// Kernel-by-kernel bit-identity of the SIMD dispatch layer.
//
// The contract (tensor/simd.h): the scalar reference table and the
// dispatched vector table execute the same per-element IEEE operation
// sequence, so their outputs are memcmp-equal — not merely close. Every
// kernel is swept over sizes that exercise full vector blocks, row/column
// remainders, and the scalar tails on both sides of them.

#include <cstring>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "tensor/quantized.h"
#include "tensor/simd.h"
#include "tensor/tensor.h"
#include "util/rng.h"

namespace dquag {
namespace {

std::vector<float> RandomVector(int64_t n, Rng& rng, double lo = -2.0,
                                double hi = 2.0) {
  std::vector<float> v(static_cast<size_t>(n));
  for (float& x : v) x = static_cast<float>(rng.Uniform(lo, hi));
  return v;
}

void ExpectBytesEqual(const std::vector<float>& a, const std::vector<float>& b,
                      const std::string& label) {
  ASSERT_EQ(a.size(), b.size()) << label;
  EXPECT_EQ(0, std::memcmp(a.data(), b.data(), a.size() * sizeof(float)))
      << label;
}

// Size sweep: k crosses the 8-lane boundary and its tails; n crosses the
// 8-column AVX2 tile and its remainders; m crosses the 4-row block.
const int64_t kKs[] = {1, 2, 3, 7, 8, 9, 15, 16, 17, 31, 33, 64, 67};
const int64_t kNs[] = {1, 3, 5, 8, 11, 16, 64};
const int64_t kMs[] = {1, 2, 3, 4, 5, 7, 9};

TEST(SimdKernelTest, MatMulFamilyMatchesScalar) {
  const simd::SimdKernelTable& scalar = simd::ScalarKernels();
  const simd::SimdKernelTable& best = simd::BestSupportedKernels();
  Rng rng(101);
  for (int64_t m : kMs) {
    for (int64_t k : kKs) {
      for (int64_t n : kNs) {
        const std::string label = "m=" + std::to_string(m) +
                                  " k=" + std::to_string(k) +
                                  " n=" + std::to_string(n);
        std::vector<float> a = RandomVector(m * k, rng);
        std::vector<float> b = RandomVector(k * n, rng);
        std::vector<float> seed = RandomVector(m * n, rng);

        std::vector<float> c0 = seed;
        std::vector<float> c1 = seed;
        scalar.matmul(a.data(), b.data(), c0.data(), m, k, n);
        best.matmul(a.data(), b.data(), c1.data(), m, k, n);
        ExpectBytesEqual(c0, c1, "matmul " + label);

        // A^T B: A is [m,k], B is [m,n], C is [k,n].
        std::vector<float> bt = RandomVector(m * n, rng);
        std::vector<float> ct = RandomVector(k * n, rng);
        std::vector<float> t0 = ct;
        std::vector<float> t1 = ct;
        scalar.matmul_trans_a(a.data(), bt.data(), t0.data(), m, k, n);
        best.matmul_trans_a(a.data(), bt.data(), t1.data(), m, k, n);
        ExpectBytesEqual(t0, t1, "matmul_trans_a " + label);

        // A B^T: A is [m,k], B is [n,k] here, C is [m,n].
        std::vector<float> bb = RandomVector(n * k, rng);
        std::vector<float> cb = RandomVector(m * n, rng);
        std::vector<float> u0 = cb;
        std::vector<float> u1 = cb;
        scalar.matmul_trans_b(a.data(), bb.data(), u0.data(), m, k, n);
        best.matmul_trans_b(a.data(), bb.data(), u1.data(), m, k, n);
        ExpectBytesEqual(u0, u1, "matmul_trans_b " + label);
      }
    }
  }
}

TEST(SimdKernelTest, DualMatVecAndReadoutMatchScalar) {
  const simd::SimdKernelTable& scalar = simd::ScalarKernels();
  const simd::SimdKernelTable& best = simd::BestSupportedKernels();
  Rng rng(102);
  for (int64_t rows : kMs) {
    for (int64_t k : kKs) {
      const std::string label =
          "rows=" + std::to_string(rows) + " k=" + std::to_string(k);
      std::vector<float> x = RandomVector(rows * k, rng);
      std::vector<float> w1 = RandomVector(k, rng);
      std::vector<float> w2 = RandomVector(k, rng);
      std::vector<float> o1a(rows), o2a(rows), o1b(rows), o2b(rows);
      scalar.dual_matvec(x.data(), w1.data(), w2.data(), o1a.data(),
                         o2a.data(), rows, k);
      best.dual_matvec(x.data(), w1.data(), w2.data(), o1b.data(), o2b.data(),
                       rows, k);
      ExpectBytesEqual(o1a, o1b, "dual_matvec o1 " + label);
      ExpectBytesEqual(o2a, o2b, "dual_matvec o2 " + label);

      // readout_dot: z is [rows, d, h] with d features of width h = k.
      const int64_t d = 5;
      std::vector<float> z = RandomVector(rows * d * k, rng);
      std::vector<float> w = RandomVector(d * k, rng);
      std::vector<float> bias = RandomVector(d, rng);
      std::vector<float> ra(rows * d), rb(rows * d);
      scalar.readout_dot(z.data(), w.data(), bias.data(), ra.data(), rows, d,
                         k);
      best.readout_dot(z.data(), w.data(), bias.data(), rb.data(), rows, d,
                       k);
      ExpectBytesEqual(ra, rb, "readout_dot " + label);
    }
  }
}

TEST(SimdKernelTest, ElementwiseKernelsMatchScalar) {
  const simd::SimdKernelTable& scalar = simd::ScalarKernels();
  const simd::SimdKernelTable& best = simd::BestSupportedKernels();
  Rng rng(103);
  for (int64_t n : kKs) {
    const std::string label = "n=" + std::to_string(n);
    std::vector<float> x = RandomVector(n, rng, -6.0, 6.0);

    std::vector<float> e0 = x;
    std::vector<float> e1 = x;
    scalar.exp_inplace(e0.data(), n);
    best.exp_inplace(e1.data(), n);
    ExpectBytesEqual(e0, e1, "exp_inplace " + label);

    std::vector<float> l0(n), l1(n);
    scalar.elu(x.data(), l0.data(), n, 1.0f);
    best.elu(x.data(), l1.data(), n, 1.0f);
    ExpectBytesEqual(l0, l1, "elu " + label);

    const float s = 0.37f;
    std::vector<float> seed = RandomVector(n, rng);
    std::vector<float> a0 = seed;
    std::vector<float> a1 = seed;
    scalar.axpy(x.data(), s, a0.data(), n);
    best.axpy(x.data(), s, a1.data(), n);
    ExpectBytesEqual(a0, a1, "axpy " + label);

    std::vector<float> b = RandomVector(n, rng);
    std::vector<float> p0 = seed;
    std::vector<float> p1 = seed;
    scalar.add_product(x.data(), b.data(), s, p0.data(), n);
    best.add_product(x.data(), b.data(), s, p1.data(), n);
    ExpectBytesEqual(p0, p1, "add_product " + label);
  }
}

TEST(SimdKernelTest, SegmentSoftmaxMatchesScalar) {
  const simd::SimdKernelTable& scalar = simd::ScalarKernels();
  const simd::SimdKernelTable& best = simd::BestSupportedKernels();
  Rng rng(104);
  // Segments of wildly different sizes, scattered through `order`.
  const std::vector<int64_t> offsets = {0, 1, 4, 4, 13, 20};
  const size_t num_segments = offsets.size() - 1;
  const int64_t num_entries = offsets.back();
  std::vector<int32_t> order(static_cast<size_t>(num_entries));
  for (size_t i = 0; i < order.size(); ++i) {
    order[i] = static_cast<int32_t>((i * 7) % order.size());
  }
  // `order` must be a permutation; the stride-7 walk is one for size 20.
  std::vector<float> row = RandomVector(num_entries, rng, -4.0, 4.0);
  std::vector<float> r0 = row;
  std::vector<float> r1 = row;
  scalar.segment_softmax_csr(r0.data(), offsets.data(), num_segments,
                             order.data());
  best.segment_softmax_csr(r1.data(), offsets.data(), num_segments,
                           order.data());
  ExpectBytesEqual(r0, r1, "segment_softmax_csr");
}

TEST(SimdKernelTest, QuantizePathMatchesScalar) {
  const simd::SimdKernelTable& scalar = simd::ScalarKernels();
  const simd::SimdKernelTable& best = simd::BestSupportedKernels();
  Rng rng(105);
  for (int64_t rows : kMs) {
    for (int64_t k : kKs) {
      for (int64_t n : kNs) {
        const std::string label = "rows=" + std::to_string(rows) +
                                  " k=" + std::to_string(k) +
                                  " n=" + std::to_string(n);
        const int64_t kp = (k + 1) & ~int64_t{1};
        std::vector<float> x = RandomVector(rows * k, rng);
        if (rows > 2) {
          // An all-zero row exercises the scale-0 path.
          std::fill(x.begin() + static_cast<size_t>(k),
                    x.begin() + static_cast<size_t>(2 * k), 0.0f);
        }

        std::vector<int8_t> q0(rows * kp, 99), q1(rows * kp, 99);
        std::vector<float> s0(rows), s1(rows);
        scalar.quantize_rows(x.data(), rows, k, kp, q0.data(), s0.data());
        best.quantize_rows(x.data(), rows, k, kp, q1.data(), s1.data());
        ASSERT_EQ(0, std::memcmp(q0.data(), q1.data(), q0.size()))
            << "quantize_rows values " << label;
        ExpectBytesEqual(s0, s1, "quantize_rows scales " + label);

        // Weights through the production quantize + pack pipeline.
        Tensor w({k, n});
        for (int64_t i = 0; i < w.numel(); ++i) {
          w.data()[i] = static_cast<float>(rng.Uniform(-1.0, 1.0));
        }
        QuantizedWeight qw = QuantizeWeight(w);
        PackQuantizedWeight(qw);
        ASSERT_EQ(qw.in_padded(), kp) << label;
        std::vector<float> bias = RandomVector(n, rng);

        for (const float* pb :
             {static_cast<const float*>(bias.data()),
              static_cast<const float*>(nullptr)}) {
          std::vector<float> g0(rows * n, -7.0f), g1(rows * n, -7.0f);
          scalar.qgemm(q0.data(), s0.data(), qw.packed.data(),
                       qw.scales.data(), pb, g0.data(), rows, kp, n);
          best.qgemm(q0.data(), s0.data(), qw.packed.data(), qw.scales.data(),
                     pb, g1.data(), rows, kp, n);
          ExpectBytesEqual(g0, g1,
                           std::string("qgemm ") +
                               (pb != nullptr ? "bias " : "nobias ") + label);
        }
      }
    }
  }
}

// The override hook swaps the process-wide table and back.
TEST(SimdKernelTest, OverrideHookSwapsActiveTable) {
  const simd::SimdKernelTable& scalar = simd::ScalarKernels();
  simd::SetKernelTableOverride(&scalar);
  EXPECT_EQ(&simd::ActiveKernels(), &scalar);
  simd::SetKernelTableOverride(nullptr);
  EXPECT_NE(simd::ActiveKernels().name, nullptr);
}

// Row-position independence: validating rows in one block or split into
// arbitrary sub-blocks yields byte-identical outputs (the streaming
// chunking contract at the kernel level).
TEST(SimdKernelTest, MatMulIsRowPositionIndependent) {
  const simd::SimdKernelTable& kt = simd::ActiveKernels();
  Rng rng(106);
  const int64_t m = 9, k = 33, n = 11;
  std::vector<float> a = RandomVector(m * k, rng);
  std::vector<float> b = RandomVector(k * n, rng);
  std::vector<float> whole(m * n, 0.0f);
  kt.matmul(a.data(), b.data(), whole.data(), m, k, n);
  std::vector<float> split(m * n, 0.0f);
  for (int64_t lo = 0, step = 1; lo < m; lo += step, ++step) {
    const int64_t hi = std::min(m, lo + step);
    kt.matmul(a.data() + lo * k, b.data(), split.data() + lo * n, hi - lo, k,
              n);
  }
  ExpectBytesEqual(whole, split, "row-split matmul");
}

}  // namespace
}  // namespace dquag
