// Accuracy and determinism pins for FastExpf (tensor/fast_math.h).
//
// FastExpf is the single transcendental on the inference hot path (ELU,
// segment softmax), and the SIMD tables carry a lane-wise clone of it, so
// two things are pinned here: its worst-case ULP error against libm's
// double-precision exp over the full clamped input range, and bit-equality
// between the scalar function, the scalar kernel table and the dispatched
// vector table.

#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "tensor/fast_math.h"
#include "tensor/simd.h"
#include "util/rng.h"

namespace dquag {
namespace {

uint32_t FloatBits(float x) {
  uint32_t u;
  std::memcpy(&u, &x, sizeof(u));
  return u;
}

float BitsToFloat(uint32_t u) {
  float x;
  std::memcpy(&x, &u, sizeof(x));
  return x;
}

// ULP distance between two positive finite floats: for same-sign IEEE
// values the integer distance of the bit patterns is exactly the number of
// representable floats between them.
int64_t UlpDistance(float a, float b) {
  return std::abs(static_cast<int64_t>(FloatBits(a)) -
                  static_cast<int64_t>(FloatBits(b)));
}

// Every 997th bit pattern across the full clamped domain [-87, 88]. The
// prime stride hits every exponent byte and all mantissa phases — ~300k
// probes per sign, including denormal inputs near zero.
TEST(FastMathTest, MaxUlpVsLibmOverFullRange) {
  constexpr uint32_t kStride = 997;
  const uint32_t pos_end = FloatBits(88.0f);
  const uint32_t neg_end = FloatBits(87.0f);
  int64_t max_ulp = 0, max_ulp_moderate = 0;
  float worst_x = 0.0f, worst_x_moderate = 0.0f;
  auto probe = [&](float x) {
    const float got = FastExpf(x);
    const float want = static_cast<float>(std::exp(static_cast<double>(x)));
    ASSERT_TRUE(std::isfinite(got)) << "x=" << x;
    ASSERT_GT(got, 0.0f) << "x=" << x;
    const int64_t ulp = UlpDistance(got, want);
    if (ulp > max_ulp) {
      max_ulp = ulp;
      worst_x = x;
    }
    if (std::fabs(x) <= 10.0f && ulp > max_ulp_moderate) {
      max_ulp_moderate = ulp;
      worst_x_moderate = x;
    }
  };
  probe(0.0f);
  for (uint32_t bits = 1; bits <= pos_end; bits += kStride) {
    probe(BitsToFloat(bits));
  }
  for (uint32_t bits = 1; bits <= neg_end; bits += kStride) {
    probe(-BitsToFloat(bits));
  }
  // Two pins, both measured empirically. Over the moderate range that
  // activations actually occupy (|x| <= 10), the degree-6 Taylor after
  // reduction stays within 4 ULP of the correctly-rounded result. At the
  // range extremes the single-constant reduction's ln2 truncation error is
  // amplified by n (~127), costing up to ~20 ULP — inherent to the
  // one-constant scheme, not a polynomial defect. Regressions here mean
  // someone touched the polynomial or the reduction constants.
  EXPECT_LE(max_ulp_moderate, 4) << "worst at x=" << worst_x_moderate;
  EXPECT_LE(max_ulp, 24) << "worst at x=" << worst_x;
}

TEST(FastMathTest, EdgeCasesSaturateFinite) {
  const float at_min = FastExpf(-87.0f);
  const float at_max = FastExpf(88.0f);
  EXPECT_GT(at_min, 0.0f);
  EXPECT_TRUE(std::isfinite(at_max));

  // Out-of-range inputs clamp to the boundary values, bit-for-bit.
  EXPECT_EQ(FloatBits(FastExpf(-1000.0f)), FloatBits(at_min));
  EXPECT_EQ(FloatBits(FastExpf(1000.0f)), FloatBits(at_max));
  EXPECT_EQ(FloatBits(FastExpf(-std::numeric_limits<float>::infinity())),
            FloatBits(at_min));
  EXPECT_EQ(FloatBits(FastExpf(std::numeric_limits<float>::infinity())),
            FloatBits(at_max));
  // NaN falls out of both clamp comparisons onto the lower bound — a
  // deliberate choice: the kernels must never emit NaN downstream.
  EXPECT_EQ(FloatBits(FastExpf(std::numeric_limits<float>::quiet_NaN())),
            FloatBits(at_min));

  EXPECT_EQ(FloatBits(FastExpf(0.0f)), FloatBits(1.0f));
  // Denormal inputs behave like zero to within the pinned accuracy.
  const float denorm = std::numeric_limits<float>::denorm_min();
  EXPECT_LE(UlpDistance(FastExpf(denorm), 1.0f), 4);
}

// The scalar kernel table's exp_inplace is FastExpf element-for-element,
// and the dispatched table matches it bit-for-bit (the SIMD clone pins
// every intermediate rounding). Sizes cross the vector width and tails.
TEST(FastMathTest, KernelTablesMatchScalarFunctionBitwise) {
  const simd::SimdKernelTable& scalar = simd::ScalarKernels();
  const simd::SimdKernelTable& best = simd::BestSupportedKernels();
  Rng rng(7);
  for (int64_t n : {1, 7, 8, 9, 31, 64, 1000, 4096 + 5}) {
    std::vector<float> x(static_cast<size_t>(n));
    for (float& v : x) v = static_cast<float>(rng.Uniform(-90.0, 90.0));
    if (n >= 8) {
      x[0] = -87.0f;
      x[1] = 88.0f;
      x[2] = 0.0f;
      x[3] = std::numeric_limits<float>::infinity();
      x[4] = -std::numeric_limits<float>::infinity();
      x[5] = std::numeric_limits<float>::quiet_NaN();
      x[6] = std::numeric_limits<float>::denorm_min();
      x[7] = -1e-20f;
    }
    std::vector<float> want = x;
    for (float& v : want) v = FastExpf(v);

    std::vector<float> got_scalar = x;
    scalar.exp_inplace(got_scalar.data(), n);
    EXPECT_EQ(0, std::memcmp(want.data(), got_scalar.data(),
                             want.size() * sizeof(float)))
        << "scalar table vs FastExpf, n=" << n;

    std::vector<float> got_best = x;
    best.exp_inplace(got_best.data(), n);
    EXPECT_EQ(0, std::memcmp(want.data(), got_best.data(),
                             want.size() * sizeof(float)))
        << best.name << " table vs FastExpf, n=" << n;
  }
}

}  // namespace
}  // namespace dquag
