// AtomicFileWriter (util/atomic_file.h): write/commit/abandon semantics,
// orphan sweeping, and the crash-atomicity proof.
//
// The crash tests fork a child that arms a `crash` failpoint at ONE step of
// the commit protocol and rewrites an existing file; the child dies there
// with std::_Exit (no flushing, no unwinding — the portable stand-in for
// SIGKILL). The parent then asserts the destination holds EXACTLY the old
// bytes (crash before rename) or EXACTLY the new bytes (crash after), never
// a torn mix, and that startup recovery sweeps whatever temp the crash
// stranded.

#include <dirent.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "util/atomic_file.h"
#include "util/failpoint.h"

namespace dquag {
namespace {

class AtomicFileTest : public ::testing::Test {
 protected:
  void SetUp() override {
    failpoint::DisableAll();
    char tmpl[] = "/tmp/dquag_atomic_XXXXXX";
    ASSERT_NE(::mkdtemp(tmpl), nullptr);
    dir_ = tmpl;
  }
  void TearDown() override {
    failpoint::DisableAll();
    // Best-effort cleanup; tests assert on contents, not emptiness.
    for (const std::string& name : ListDir()) {
      ::unlink((dir_ + "/" + name).c_str());
    }
    ::rmdir(dir_.c_str());
  }

  std::string Path(const std::string& name) const { return dir_ + "/" + name; }

  static std::string ReadAll(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    return in.good() || in.eof() ? buf.str() : "<unreadable>";
  }

  static bool Exists(const std::string& path) {
    struct stat st;
    return ::stat(path.c_str(), &st) == 0;
  }

  std::vector<std::string> ListDir() const {
    std::vector<std::string> names;
    if (DIR* dir = ::opendir(dir_.c_str())) {
      while (dirent* entry = ::readdir(dir)) {
        const std::string name = entry->d_name;
        if (name != "." && name != "..") names.push_back(name);
      }
      ::closedir(dir);
    }
    return names;
  }

  std::string dir_;
};

TEST_F(AtomicFileTest, WriteFileAtomicCreatesAndReplaces) {
  const std::string path = Path("data.bin");
  ASSERT_TRUE(WriteFileAtomic(path, "first").ok());
  EXPECT_EQ(ReadAll(path), "first");
  ASSERT_TRUE(WriteFileAtomic(path, "second, longer than before").ok());
  EXPECT_EQ(ReadAll(path), "second, longer than before");
  EXPECT_FALSE(Exists(path + ".tmp"));
}

TEST_F(AtomicFileTest, IncrementalWritesConcatenate) {
  const std::string path = Path("data.bin");
  auto writer = AtomicFileWriter::Open(path);
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE(writer->Write("abc").ok());
  ASSERT_TRUE(writer->Write("def").ok());
  EXPECT_FALSE(Exists(path)) << "destination must not appear before Commit";
  ASSERT_TRUE(writer->Commit().ok());
  EXPECT_EQ(ReadAll(path), "abcdef");
}

TEST_F(AtomicFileTest, AbandonLeavesDestinationUntouchedAndNoTemp) {
  const std::string path = Path("data.bin");
  ASSERT_TRUE(WriteFileAtomic(path, "original").ok());
  {
    auto writer = AtomicFileWriter::Open(path);
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE(writer->Write("partial new conten").ok());
    // Destroyed without Commit: error-path unwind.
  }
  EXPECT_EQ(ReadAll(path), "original");
  EXPECT_FALSE(Exists(path + ".tmp"));
}

TEST_F(AtomicFileTest, MoveTransfersCommitResponsibility) {
  const std::string path = Path("data.bin");
  auto writer = AtomicFileWriter::Open(path);
  ASSERT_TRUE(writer.ok());
  AtomicFileWriter moved = std::move(*writer);
  ASSERT_TRUE(moved.Write("payload").ok());
  ASSERT_TRUE(moved.Commit().ok());
  EXPECT_EQ(ReadAll(path), "payload");
}

TEST_F(AtomicFileTest, ErrorFailpointsSurfaceAsStatusNotTornFile) {
  const std::string path = Path("data.bin");
  ASSERT_TRUE(WriteFileAtomic(path, "original").ok());
  for (const char* site :
       {failpoint::kAtomicOpen, failpoint::kAtomicWrite,
        failpoint::kAtomicFsync, failpoint::kAtomicRename}) {
    failpoint::Enable(site, failpoint::Action::kError);
    const Status status = WriteFileAtomic(path, "replacement");
    EXPECT_EQ(status.code(), StatusCode::kIoError) << site;
    EXPECT_EQ(ReadAll(path), "original") << site;
    EXPECT_FALSE(Exists(path + ".tmp")) << site;
    failpoint::DisableAll();
  }
  // The dirsync failpoint fires AFTER the rename: the contents swap even
  // though Commit reports the injected error.
  failpoint::Enable(failpoint::kAtomicDirsync, failpoint::Action::kError);
  EXPECT_FALSE(WriteFileAtomic(path, "replacement").ok());
  EXPECT_EQ(ReadAll(path), "replacement");
  failpoint::DisableAll();
}

TEST_F(AtomicFileTest, RemoveOrphanedTempFilesSweepsOnlyTemps) {
  ASSERT_TRUE(WriteFileAtomic(Path("keep.bin"), "keep").ok());
  { std::ofstream(Path("orphan1.tmp")) << "garbage"; }
  { std::ofstream(Path("orphan2.bin.tmp")) << "more garbage"; }
  EXPECT_EQ(RemoveOrphanedTempFiles(dir_), 2);
  EXPECT_FALSE(Exists(Path("orphan1.tmp")));
  EXPECT_FALSE(Exists(Path("orphan2.bin.tmp")));
  EXPECT_EQ(ReadAll(Path("keep.bin")), "keep");
  EXPECT_EQ(RemoveOrphanedTempFiles(dir_), 0);  // idempotent
  EXPECT_EQ(RemoveOrphanedTempFiles(Path("missing-subdir")), 0);
}

/// Kill-at-every-failpoint: crash a child at each step of the commit
/// protocol and assert the destination is never torn. Sites strictly
/// before the rename must leave the OLD bytes; sites after it (dirsync)
/// must leave the NEW bytes; nothing may leave a mix.
TEST_F(AtomicFileTest, CrashAtEveryProtocolStepNeverTearsTheFile) {
  const std::string path = Path("checkpoint.bin");
  const std::string old_bytes(4096, 'O');
  const std::string new_bytes(8192, 'N');
  struct Step {
    const char* site;
    bool new_bytes_expected;
  };
  const std::vector<Step> steps = {
      {failpoint::kAtomicOpen, false},
      {failpoint::kAtomicWrite, false},
      {failpoint::kAtomicFsync, false},
      {failpoint::kAtomicRename, false},
      {failpoint::kAtomicDirsync, true},
  };
  for (const Step& step : steps) {
    ASSERT_TRUE(WriteFileAtomic(path, old_bytes).ok());

    const pid_t child = ::fork();
    ASSERT_GE(child, 0);
    if (child == 0) {
      // Child: arm the crash and attempt the rewrite. _Exit codes keep
      // gtest state out of the child entirely.
      failpoint::Enable(step.site, failpoint::Action::kCrash);
      const Status status = WriteFileAtomic(path, new_bytes);
      std::_Exit(status.ok() ? 0 : 1);  // reaching here = failpoint missed
    }
    int wait_status = 0;
    ASSERT_EQ(::waitpid(child, &wait_status, 0), child) << step.site;
    ASSERT_TRUE(WIFEXITED(wait_status)) << step.site << ": child signaled";
    ASSERT_EQ(WEXITSTATUS(wait_status), failpoint::kCrashExitCode)
        << step.site << ": child did not die at the failpoint";

    const std::string survivor = ReadAll(path);
    if (step.new_bytes_expected) {
      EXPECT_EQ(survivor, new_bytes) << step.site;
    } else {
      EXPECT_EQ(survivor, old_bytes) << step.site;
    }

    // Startup recovery: whatever temp the crash stranded is swept, and the
    // committed file survives the sweep.
    RemoveOrphanedTempFiles(dir_);
    EXPECT_FALSE(Exists(path + ".tmp")) << step.site;
    EXPECT_EQ(ReadAll(path), survivor) << step.site;
  }
}

}  // namespace
}  // namespace dquag
