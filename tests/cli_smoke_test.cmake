# End-to-end smoke test for the dquag CLI schema-template path.
# Invoked by ctest as:
#   cmake -DDQUAG_CLI=<binary> -DFIXTURE=<csv> -P cli_smoke_test.cmake
# Runs the CLI on a tiny CSV fixture and checks the guessed schema: numeric
# columns (including one with an empty cell) must come back "numeric" and
# string columns "categorical".

execute_process(
  COMMAND ${DQUAG_CLI} schema-template --data ${FIXTURE}
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err
  RESULT_VARIABLE code)

if(NOT code EQUAL 0)
  message(FATAL_ERROR
          "dquag schema-template exited with ${code}\nstderr: ${err}")
endif()

foreach(needle
        "\"columns\""
        "\"name\": \"age\""
        "\"name\": \"income\""
        "\"name\": \"city\""
        "\"name\": \"churned\""
        "\"type\": \"categorical\"")
  if(NOT out MATCHES "${needle}")
    message(FATAL_ERROR "expected '${needle}' in schema output:\n${out}")
  endif()
endforeach()

# age, income, churned must all be guessed numeric (income has an empty cell).
string(REGEX MATCHALL "\"type\": \"numeric\"" numeric_hits "${out}")
list(LENGTH numeric_hits numeric_count)
if(NOT numeric_count EQUAL 3)
  message(FATAL_ERROR
          "expected 3 numeric columns, got ${numeric_count}:\n${out}")
endif()

message(STATUS "cli_schema_template_smoke OK")
