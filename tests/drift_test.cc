// The continuous pipeline end to end: drift detection, drift-triggered
// incremental retraining, and the zero-drop hot swap.
//
// Scenario shape (all six synthetic generators): a model trained on the
// original distribution serves a stream that shifts to a benign covariate
// regime (numeric columns scaled). The stale model over-flags the new
// regime, the monitor's EWMA/per-column statistics detect it, the
// RetrainController fine-tunes on the accepted-clean buffer (which by then
// is dominated by unflagged new-regime rows) and swaps the new checkpoint
// in; post-swap the flag rate recovers to the clean profile. The chaos
// legs arm every retrain.* failpoint site and assert fail-closed behavior:
// a failure at any protocol step leaves the old model serving. The socket
// leg runs the same story through a live `dquag serve` daemon under
// concurrent client traffic with zero dropped requests.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <limits>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "baselines/tfdv.h"
#include "core/pipeline.h"
#include "core/retrain_controller.h"
#include "core/validation_service.h"
#include "data/batch_sampler.h"
#include "data/generators.h"
#include "serve/client.h"
#include "serve/server.h"
#include "util/failpoint.h"

namespace dquag {
namespace {

using failpoint::Action;

// Benign covariate shift: every numeric column moves up by `frac` of its
// observed span — a fleet-wide sensor recalibration. The shifted data is
// NOT corrupt; it is a new clean regime the stale model over-flags.
Table ShiftNumericColumns(const Table& table, double frac) {
  Table shifted = table;
  for (int64_t c = 0; c < table.num_columns(); ++c) {
    if (table.schema().column(c).type != ColumnType::kNumeric) continue;
    std::vector<double>& column = shifted.Numeric(c);
    double lo = std::numeric_limits<double>::infinity();
    double hi = -std::numeric_limits<double>::infinity();
    for (double v : column) {
      if (IsMissing(v)) continue;
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
    const double span = hi > lo ? hi - lo : 1.0;
    for (double& value : column) {
      if (!IsMissing(value)) value += frac * span;
    }
  }
  return shifted;
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

DquagPipelineOptions SmallConfig(uint64_t seed) {
  DquagPipelineOptions options;
  options.config.encoder.hidden_dim = 16;
  options.config.epochs = 4;
  options.config.seed = seed;
  return options;
}

double FlagFraction(const ValidationService& service, const Table& batch) {
  return service.Validate(batch).flagged_fraction;
}

// ---- RetrainCheckpointPath -------------------------------------------------

TEST(RetrainCheckpointPathTest, AppendsAndReplacesGeneration) {
  EXPECT_EQ(RetrainCheckpointPath("m.ckpt", 1), "m.ckpt.gen1");
  EXPECT_EQ(RetrainCheckpointPath("m.ckpt.gen1", 2), "m.ckpt.gen2");
  EXPECT_EQ(RetrainCheckpointPath("m.ckpt.gen12", 13), "m.ckpt.gen13");
  // A ".gen" that is not a generation suffix stays part of the name.
  EXPECT_EQ(RetrainCheckpointPath("m.gen/x.ckpt", 1), "m.gen/x.ckpt.gen1");
  EXPECT_EQ(RetrainCheckpointPath("m.genx", 1), "m.genx.gen1");
}

// ---- Drift -> retrain -> recover, all six generators -----------------------

struct DriftScenario {
  const char* name;
  Table (*generate)(int64_t rows, Rng& rng);
  double shift;
};

const DriftScenario kScenarios[] = {
    {"hotel", +[](int64_t rows, Rng& rng) {
       return datasets::GenerateHotelBooking(rows, rng);
     }, 0.3},
    {"credit", +[](int64_t rows, Rng& rng) {
       return datasets::GenerateCreditCard(rows, rng);
     }, 0.3},
    {"taxi", +[](int64_t rows, Rng& rng) {
       return datasets::GenerateNyTaxi(rows, rng, /*dims=*/8);
     }, 0.25},
    {"airbnb", +[](int64_t rows, Rng& rng) {
       return datasets::GenerateAirbnbClean(rows, rng);
     }, 0.3},
    {"bicycle", +[](int64_t rows, Rng& rng) {
       return datasets::GenerateBicycleClean(rows, rng);
     }, 0.3},
    {"googleplay", +[](int64_t rows, Rng& rng) {
       return datasets::GenerateGooglePlayClean(rows, rng);
     }, 0.3},
};

class DriftRecoveryTest : public ::testing::TestWithParam<DriftScenario> {};

TEST_P(DriftRecoveryTest, StaleModelDetectsRetrainsAndRecovers) {
  const DriftScenario& scenario = GetParam();
  Rng rng(1234);
  Table clean = scenario.generate(600, rng);

  DquagPipeline pipeline(SmallConfig(7));
  ASSERT_TRUE(pipeline.Fit(clean).ok());
  const std::string checkpoint =
      std::string("/tmp/dquag_drift_") + scenario.name + ".ckpt";
  ASSERT_TRUE(pipeline.Save(checkpoint).ok());

  // Test-scale monitor: warm up after 400 rows, drift over a 1200-row
  // window.
  ValidationServiceOptions service_options;
  service_options.monitor.warmup_rows = 400;
  service_options.monitor.drift_window_rows = 1200;
  auto service_or =
      ValidationService::FromCheckpoint(checkpoint, service_options);
  ASSERT_TRUE(service_or.ok());
  std::shared_ptr<ValidationService> service = std::move(*service_or);

  RetrainOptions retrain;
  retrain.min_buffer_rows = 128;
  retrain.max_buffer_rows = 2048;
  retrain.trigger_observations = 3;
  retrain.finetune_epochs = 3;
  int swaps = 0;
  RetrainController controller(
      checkpoint, retrain,
      [&](const std::string& new_path) -> Status {
        auto swapped =
            ValidationService::FromCheckpoint(new_path, service_options);
        if (!swapped.ok()) return swapped.status();
        service = std::move(*swapped);
        ++swaps;
        return Status::Ok();
      });

  auto feed = [&](const Table& source, Rng& batch_rng) {
    Table batch = SampleBatch(source, 200, batch_rng);
    BatchVerdict verdict = service->Validate(batch);
    MonitorObservation observation = service->ObserveVerdict(verdict);
    controller.ObserveBatch(batch, verdict, observation);
    return verdict.flagged_fraction;
  };

  // Phase 1: the original regime stays quiet. Its average flag rate is the
  // steady-state profile recovery is measured against.
  Rng stream_rng(99);
  double clean_fraction = 0.0;
  for (int i = 0; i < 3; ++i) clean_fraction += feed(clean, stream_rng);
  clean_fraction /= 3.0;
  EXPECT_FALSE(controller.ShouldRetrain())
      << scenario.name << ": clean traffic must not trigger a retrain";

  // Phase 2: the regime shifts; the stale model degrades and the loop
  // must detect it within a bounded number of batches.
  Table shifted = ShiftNumericColumns(clean, scenario.shift);
  double degraded_fraction = 0.0;
  int batches_to_detect = 0;
  while (!controller.ShouldRetrain() && batches_to_detect < 30) {
    degraded_fraction = feed(shifted, stream_rng);
    ++batches_to_detect;
  }
  ASSERT_TRUE(controller.ShouldRetrain())
      << scenario.name << ": drift not detected within 30 batches";
  const double cutoff = service->pipeline().validator().batch_cutoff();
  EXPECT_GT(degraded_fraction, cutoff)
      << scenario.name << ": stale model should over-flag the new regime";

  // Phase 3: retrain + swap.
  auto new_path = controller.RetrainAndSwap();
  ASSERT_TRUE(new_path.ok()) << scenario.name << ": "
                             << new_path.status().ToString();
  EXPECT_EQ(*new_path, RetrainCheckpointPath(checkpoint, 1));
  EXPECT_EQ(swaps, 1);
  EXPECT_EQ(controller.snapshot().successes, 1);

  // Phase 4: the swapped model accepts the new regime again — the flag
  // rate drops back to the clean-era steady state (within a tolerance for
  // the held-out-percentile noise floor) or at least halves.
  Rng eval_rng(7);
  const double recovered_fraction =
      FlagFraction(*service, SampleBatch(shifted, 400, eval_rng));
  EXPECT_LT(recovered_fraction,
            std::max(0.5 * degraded_fraction, clean_fraction + 0.08))
      << scenario.name << ": post-swap flag rate did not recover (clean "
      << clean_fraction << ", degraded " << degraded_fraction << " -> "
      << recovered_fraction << ")";

  std::remove(checkpoint.c_str());
  std::remove(new_path->c_str());
}

INSTANTIATE_TEST_SUITE_P(
    AllGenerators, DriftRecoveryTest, ::testing::ValuesIn(kScenarios),
    [](const ::testing::TestParamInfo<DriftScenario>& info) {
      return std::string(info.param.name);
    });

// ---- TFDV baseline on the same scenario ------------------------------------

// Auto-inferred TFDV has NO numeric drift comparator (the user must
// configure one — the paper's Table 1 failure mode), so the covariate
// shift sails straight through it; only the expert-tuned profile, with
// its hand-set L-infinity comparator and range bounds, sees it. This is
// exactly the gap the always-on monitor closes: detection needs no
// per-column hand tuning, and the loop continues into retrain + swap.
TEST(DriftBaselineTest, AutoTfdvMissesTheShiftExpertSeesIt) {
  Rng rng(42);
  for (const DriftScenario& scenario : kScenarios) {
    Table clean = scenario.generate(600, rng);
    Table shifted = ShiftNumericColumns(clean, scenario.shift);

    TfdvValidator auto_tfdv(BaselineMode::kAuto);
    auto_tfdv.Fit(clean);
    EXPECT_FALSE(auto_tfdv.IsDirty(shifted))
        << scenario.name << ": auto TFDV has no drift comparator, yet "
        << "flagged: " << (auto_tfdv.last_anomalies().empty()
                               ? ""
                               : auto_tfdv.last_anomalies()[0]);

    TfdvValidator expert_tfdv(BaselineMode::kExpert);
    expert_tfdv.Fit(clean);
    EXPECT_FALSE(expert_tfdv.IsDirty(clean)) << scenario.name;
    EXPECT_TRUE(expert_tfdv.IsDirty(shifted)) << scenario.name;
  }
}

// ---- Warm-start determinism ------------------------------------------------

// The controller's checkpoint must be byte-identical to a manual
// Load + FineTune + Save over the same buffer snapshot: the retrain
// protocol adds no hidden state.
TEST(RetrainControllerTest, RetrainIsBitIdenticalToManualFineTune) {
  Rng rng(5);
  Table clean = datasets::GenerateCreditCard(600, rng);
  DquagPipeline pipeline(SmallConfig(11));
  ASSERT_TRUE(pipeline.Fit(clean).ok());
  const std::string checkpoint = "/tmp/dquag_drift_bitident.ckpt";
  ASSERT_TRUE(pipeline.Save(checkpoint).ok());

  ValidationServiceOptions service_options;
  service_options.monitor.warmup_rows = 200;
  auto service = ValidationService::FromCheckpoint(checkpoint,
                                                   service_options);
  ASSERT_TRUE(service.ok());

  RetrainOptions retrain;
  retrain.min_buffer_rows = 64;
  retrain.trigger_observations = 2;
  retrain.finetune_epochs = 2;
  RetrainController controller(checkpoint, retrain,
                               [](const std::string&) {
                                 return Status::Ok();
                               });

  Table shifted = ShiftNumericColumns(clean, 0.3);
  Rng stream_rng(3);
  int fed = 0;
  while (!controller.ShouldRetrain() && fed < 30) {
    Table batch = SampleBatch(shifted, 200, stream_rng);
    BatchVerdict verdict = (*service)->Validate(batch);
    controller.ObserveBatch(batch, verdict,
                            (*service)->ObserveVerdict(verdict));
    ++fed;
  }
  ASSERT_TRUE(controller.ShouldRetrain());

  // Snapshot the controller's inputs BEFORE it consumes them.
  Table buffer = controller.BufferSnapshot();
  const double stream_flag_rate = controller.snapshot().stream_flag_rate;
  auto controller_path = controller.RetrainAndSwap();
  ASSERT_TRUE(controller_path.ok()) << controller_path.status().ToString();

  // Manual replica of the protocol on the same inputs.
  auto manual = DquagPipeline::Load(checkpoint);
  ASSERT_TRUE(manual.ok());
  FineTuneOptions finetune;
  finetune.epochs = retrain.finetune_epochs;
  finetune.stream_flag_rate = stream_flag_rate;
  ASSERT_TRUE(manual->FineTune(buffer, finetune).ok());
  const std::string manual_path = "/tmp/dquag_drift_bitident_manual.ckpt";
  ASSERT_TRUE(manual->Save(manual_path).ok());

  const std::string controller_bytes = ReadFileBytes(*controller_path);
  const std::string manual_bytes = ReadFileBytes(manual_path);
  ASSERT_FALSE(controller_bytes.empty());
  EXPECT_EQ(controller_bytes, manual_bytes);

  std::remove(checkpoint.c_str());
  std::remove(controller_path->c_str());
  std::remove(manual_path.c_str());
}

// ---- Chaos: every retrain.* failpoint site fails closed --------------------

class RetrainChaosTest : public ::testing::Test {
 protected:
  void SetUp() override { failpoint::DisableAll(); }
  void TearDown() override { failpoint::DisableAll(); }
};

TEST_F(RetrainChaosTest, EveryProtocolStepFailsClosed) {
  Rng rng(8);
  Table clean = datasets::GenerateCreditCard(600, rng);
  DquagPipeline pipeline(SmallConfig(13));
  ASSERT_TRUE(pipeline.Fit(clean).ok());
  const std::string checkpoint = "/tmp/dquag_drift_chaos.ckpt";
  ASSERT_TRUE(pipeline.Save(checkpoint).ok());

  ValidationServiceOptions service_options;
  service_options.monitor.warmup_rows = 200;
  auto service = ValidationService::FromCheckpoint(checkpoint,
                                                   service_options);
  ASSERT_TRUE(service.ok());

  RetrainOptions retrain;
  retrain.min_buffer_rows = 64;
  retrain.trigger_observations = 2;
  retrain.finetune_epochs = 1;
  int swaps = 0;
  RetrainController controller(checkpoint, retrain,
                               [&](const std::string&) {
                                 ++swaps;
                                 return Status::Ok();
                               });

  Table shifted = ShiftNumericColumns(clean, 0.3);
  Rng stream_rng(21);
  int fed = 0;
  while (!controller.ShouldRetrain() && fed < 30) {
    Table batch = SampleBatch(shifted, 200, stream_rng);
    BatchVerdict verdict = (*service)->Validate(batch);
    controller.ObserveBatch(batch, verdict,
                            (*service)->ObserveVerdict(verdict));
    ++fed;
  }
  ASSERT_TRUE(controller.ShouldRetrain());

  // Every site before the swap callback must fail the protocol WITHOUT
  // invoking the swap; the serving model keeps validating throughout.
  const char* sites[] = {failpoint::kRetrainLoad,
                         failpoint::kRetrainFineTune,
                         failpoint::kRetrainSave, failpoint::kRetrainSwap};
  int64_t expected_failures = 0;
  for (const char* site : sites) {
    failpoint::Enable(site, Action::kError);
    auto result = controller.RetrainAndSwap();
    failpoint::Disable(site);
    EXPECT_FALSE(result.ok()) << site;
    EXPECT_EQ(swaps, 0) << site;
    ++expected_failures;
    EXPECT_EQ(controller.snapshot().failures, expected_failures) << site;
    EXPECT_EQ(controller.snapshot().successes, 0) << site;
    // Old model untouched and still serving.
    Table probe = SampleBatch(clean, 100, stream_rng);
    EXPECT_EQ((*service)->Validate(probe).instances.size(), 100u) << site;
    // Drift is still pending, so the trigger stays armed.
    EXPECT_TRUE(controller.ShouldRetrain()) << site;
  }

  // With the chaos cleared, the same pending drift retrains successfully.
  auto result = controller.RetrainAndSwap();
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(swaps, 1);
  EXPECT_EQ(controller.snapshot().successes, 1);
  EXPECT_EQ(controller.snapshot().failures, expected_failures);

  std::remove(checkpoint.c_str());
  std::remove(result->c_str());
}

// ---- Headline: live daemon, concurrent traffic, zero drops -----------------

TEST(DriftServeTest, AutoRetrainUnderConcurrentTrafficDropsNothing) {
  Rng rng(17);
  Table clean = datasets::GenerateCreditCard(600, rng);
  DquagPipeline pipeline(SmallConfig(23));
  ASSERT_TRUE(pipeline.Fit(clean).ok());
  const std::string checkpoint = "/tmp/dquag_drift_serve.ckpt";
  ASSERT_TRUE(pipeline.Save(checkpoint).ok());

  ServeOptions options;
  options.auto_retrain = true;
  options.retrain.min_buffer_rows = 128;
  options.retrain.max_buffer_rows = 2048;
  options.retrain.trigger_observations = 3;
  options.retrain.finetune_epochs = 2;
  options.registry.service.monitor.warmup_rows = 300;
  options.registry.service.monitor.drift_window_rows = 1200;
  ServeDaemon daemon(options);
  ASSERT_TRUE(daemon.Start().ok());
  ASSERT_TRUE(daemon.registry().Deploy("acme", checkpoint).ok());

  Rng sample_rng(31);
  const std::string clean_csv =
      WriteCsvString(SampleBatch(clean, 200, sample_rng).ToCsv());
  Table shifted = ShiftNumericColumns(clean, 0.3);
  const std::string shifted_csv =
      WriteCsvString(SampleBatch(shifted, 200, sample_rng).ToCsv());

  // The stale model's flag rate on the shifted regime, measured over the
  // wire before the drift starts — the recovery baseline.
  auto observer = ServeClient::Connect("127.0.0.1", daemon.port());
  ASSERT_TRUE(observer.ok());
  auto degraded = observer->Validate("acme", shifted_csv);
  ASSERT_TRUE(degraded.ok());

  // Concurrent traffic: every response must be kOk end to end — the hot
  // swap may never drop or error a request.
  std::atomic<bool> stop{false};
  std::atomic<bool> drifted{false};
  std::atomic<int64_t> requests{0};
  std::atomic<int64_t> non_ok{0};
  std::vector<std::thread> workers;
  for (int t = 0; t < 4; ++t) {
    workers.emplace_back([&] {
      auto client = ServeClient::Connect("127.0.0.1", daemon.port());
      if (!client.ok()) {
        non_ok.fetch_add(1);
        return;
      }
      while (!stop.load(std::memory_order_acquire)) {
        const std::string& body =
            drifted.load(std::memory_order_acquire) ? shifted_csv
                                                    : clean_csv;
        auto verdict = client->Validate("acme", body);
        requests.fetch_add(1);
        if (!verdict.ok()) non_ok.fetch_add(1);
      }
    });
  }

  // Let some clean traffic flow, then shift the regime and wait for the
  // loop to detect, retrain and swap.
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  drifted.store(true, std::memory_order_release);

  int64_t retrains = 0;
  for (int poll = 0; poll < 300 && retrains == 0; ++poll) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    auto stats = observer->Stats("acme");
    if (stats.ok() && !stats->empty()) retrains = (*stats)[0].retrains;
  }
  stop.store(true, std::memory_order_release);
  for (std::thread& worker : workers) worker.join();

  EXPECT_GE(retrains, 1) << "drift never triggered a retrain";
  EXPECT_EQ(non_ok.load(), 0) << "requests dropped during retrain/swap";
  EXPECT_GT(requests.load(), 0);

  // The v3 stats extension carries the monitor/retrain fields.
  auto stats = observer->Stats("acme");
  ASSERT_TRUE(stats.ok());
  ASSERT_EQ(stats->size(), 1u);
  EXPECT_GE((*stats)[0].retrains, 1);
  EXPECT_GT((*stats)[0].monitor_rows, 0);
  EXPECT_EQ((*stats)[0].retrain_failures, 0);

  // Post-swap, the new regime validates clean again: the flag rate drops
  // below what the stale model produced on the same bytes.
  auto recovered = observer->Validate("acme", shifted_csv);
  ASSERT_TRUE(recovered.ok());
  EXPECT_LT(recovered->flagged_fraction, degraded->flagged_fraction);
  auto snapshot = daemon.RetrainSnapshot("acme");
  ASSERT_TRUE(snapshot.ok());
  EXPECT_GE(snapshot->successes, 1);

  daemon.Stop();
  std::remove(checkpoint.c_str());
  std::remove(snapshot->current_checkpoint.c_str());
}

}  // namespace
}  // namespace dquag
