// Tests for the data substrate: Table/Schema, preprocessing, batch
// sampling, dataset generators (schemas + planted dependencies), and error
// injection.

#include <algorithm>
#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "data/batch_sampler.h"
#include "data/error_injector.h"
#include "data/generators.h"
#include "data/preprocessor.h"
#include "graph/relationship_inference.h"

namespace dquag {
namespace {

Schema SmallSchema() {
  return Schema({
      {"city", ColumnType::kCategorical, "city name"},
      {"population", ColumnType::kNumeric, "population count"},
  });
}

// ---- Table --------------------------------------------------------------------

TEST(TableTest, AppendAndAccess) {
  Table t(SmallSchema());
  t.AppendRow({1000.0}, {"Paris"});
  t.AppendRow({2000.0}, {"Rome"});
  EXPECT_EQ(t.num_rows(), 2);
  EXPECT_EQ(t.Categorical(0)[1], "Rome");
  EXPECT_EQ(t.NumericByName("population")[0], 1000.0);
}

TEST(TableTest, SelectRowsAndAppendRows) {
  Table t(SmallSchema());
  for (int i = 0; i < 5; ++i) {
    t.AppendRow({static_cast<double>(i)}, {"c" + std::to_string(i)});
  }
  Table selected = t.SelectRows({4, 0, 4});
  EXPECT_EQ(selected.num_rows(), 3);
  EXPECT_EQ(selected.Numeric(1)[0], 4.0);
  EXPECT_EQ(selected.Numeric(1)[2], 4.0);
  Table combined = t.SelectRows({0});
  combined.AppendRows(selected);
  EXPECT_EQ(combined.num_rows(), 4);
}

TEST(TableTest, CsvRoundTripWithMissing) {
  Table t(SmallSchema());
  t.AppendRow({MissingValue()}, {"Oslo"});
  t.AppendRow({42.5}, {""});
  auto back = Table::FromCsv(t.schema(), t.ToCsv());
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(IsMissing(back->Numeric(1)[0]));
  EXPECT_EQ(back->Categorical(0)[1], "");
  EXPECT_EQ(back->Numeric(1)[1], 42.5);
}

TEST(TableTest, FromCsvRejectsBadHeaderAndCells) {
  CsvDocument doc;
  doc.header = {"wrong", "population"};
  EXPECT_FALSE(Table::FromCsv(SmallSchema(), doc).ok());
  CsvDocument doc2;
  doc2.header = {"city", "population"};
  doc2.rows = {{"Paris", "not_a_number"}};
  EXPECT_FALSE(Table::FromCsv(SmallSchema(), doc2).ok());
}

// ---- Preprocessor -------------------------------------------------------------

TEST(PreprocessorTest, MinMaxScaling) {
  Table t(SmallSchema());
  t.AppendRow({0.0}, {"a"});
  t.AppendRow({10.0}, {"b"});
  t.AppendRow({5.0}, {"c"});
  TablePreprocessor prep;
  prep.Fit(t);
  Tensor m = prep.Transform(t);
  EXPECT_FLOAT_EQ(m(0, 1), 0.0f);
  EXPECT_FLOAT_EQ(m(1, 1), 1.0f);
  EXPECT_FLOAT_EQ(m(2, 1), 0.5f);
}

TEST(PreprocessorTest, OutOfRangeNotClamped) {
  Table t(SmallSchema());
  t.AppendRow({0.0}, {"a"});
  t.AppendRow({10.0}, {"b"});
  TablePreprocessor prep;
  prep.Fit(t);
  Table fresh(SmallSchema());
  fresh.AppendRow({20.0}, {"a"});
  EXPECT_FLOAT_EQ(prep.Transform(fresh)(0, 1), 2.0f);
}

TEST(PreprocessorTest, UnknownCategoryGetsSentinel) {
  Table t(SmallSchema());
  t.AppendRow({1.0}, {"a"});
  t.AppendRow({2.0}, {"b"});
  TablePreprocessor prep;
  prep.Fit(t);
  Table fresh(SmallSchema());
  fresh.AppendRow({1.0}, {"zz"});  // typo / unseen
  EXPECT_FLOAT_EQ(prep.Transform(fresh)(0, 0),
                  static_cast<float>(TablePreprocessor::kUnknownSentinel));
}

TEST(PreprocessorTest, MissingValuesGetSentinel) {
  Table t(SmallSchema());
  t.AppendRow({1.0}, {"a"});
  t.AppendRow({2.0}, {"b"});
  TablePreprocessor prep;
  prep.Fit(t);
  Table fresh(SmallSchema());
  fresh.AppendRow({MissingValue()}, {""});
  Tensor m = prep.Transform(fresh);
  EXPECT_FLOAT_EQ(m(0, 1),
                  static_cast<float>(MinMaxScaler::kMissingSentinel));
  EXPECT_FLOAT_EQ(m(0, 0),
                  static_cast<float>(MinMaxScaler::kMissingSentinel));
}

TEST(PreprocessorTest, InverseTransformRoundTrip) {
  Table t(SmallSchema());
  t.AppendRow({0.0}, {"alpha"});
  t.AppendRow({100.0}, {"beta"});
  t.AppendRow({50.0}, {"gamma"});
  TablePreprocessor prep;
  prep.Fit(t);
  Table back = prep.InverseTransform(prep.Transform(t));
  for (int r = 0; r < 3; ++r) {
    EXPECT_NEAR(back.Numeric(1)[r], t.Numeric(1)[r], 1e-3);
    EXPECT_EQ(back.Categorical(0)[r], t.Categorical(0)[r]);
  }
}

TEST(PreprocessorTest, InverseSnapsToNearestCategory) {
  Table t(SmallSchema());
  t.AppendRow({1.0}, {"a"});
  t.AppendRow({2.0}, {"b"});
  t.AppendRow({3.0}, {"c"});
  TablePreprocessor prep;
  prep.Fit(t);
  // Codes a=0, b=1, c=2 scale to 0, .5, 1. A decoder output of 0.45 should
  // snap to "b".
  Tensor m({1, 2});
  m(0, 0) = 0.45f;
  m(0, 1) = 0.0f;
  EXPECT_EQ(prep.InverseTransform(m).Categorical(0)[0], "b");
}

TEST(PreprocessorTest, LabelEncoderDeterministicOrder) {
  LabelEncoder enc;
  enc.Fit({"zebra", "ant", "mule", "ant"});
  EXPECT_EQ(enc.vocab_size(), 3);
  EXPECT_EQ(enc.Decode(0), "ant");  // sorted vocabulary
  EXPECT_EQ(enc.Encode("zebra"), 2);
  EXPECT_EQ(enc.Encode("typo"), enc.unknown_code());
  EXPECT_EQ(enc.Encode(""), enc.missing_code());
}

TEST(PreprocessorTest, DegenerateConstantColumn) {
  Table t(SmallSchema());
  t.AppendRow({7.0}, {"a"});
  t.AppendRow({7.0}, {"a"});
  TablePreprocessor prep;
  prep.Fit(t);
  Tensor m = prep.Transform(t);
  EXPECT_TRUE(std::isfinite(m(0, 1)));
}

// ---- Batch sampling -----------------------------------------------------------

TEST(BatchSamplerTest, SizesAndBounds) {
  Rng rng(1);
  Table t(SmallSchema());
  for (int i = 0; i < 100; ++i) {
    t.AppendRow({static_cast<double>(i)}, {"x"});
  }
  Table batch = SampleBatch(t, 10, rng);
  EXPECT_EQ(batch.num_rows(), 10);
  auto batches = SampleBatches(t, 5, 0.1, rng);
  EXPECT_EQ(batches.size(), 5u);
  for (const Table& b : batches) EXPECT_EQ(b.num_rows(), 10);
}

TEST(BatchSamplerTest, WithoutReplacementWithinBatch) {
  Rng rng(2);
  Table t(SmallSchema());
  for (int i = 0; i < 50; ++i) {
    t.AppendRow({static_cast<double>(i)}, {"x"});
  }
  Table batch = SampleBatch(t, 50, rng);
  std::set<double> values(batch.Numeric(1).begin(), batch.Numeric(1).end());
  EXPECT_EQ(values.size(), 50u);
}

// ---- Generators ---------------------------------------------------------------

TEST(GeneratorTest, SchemasAreConsistent) {
  Rng rng(3);
  EXPECT_EQ(datasets::GenerateHotelBooking(10, rng).schema(),
            datasets::HotelBookingSchema());
  EXPECT_EQ(datasets::GenerateCreditCard(10, rng).schema(),
            datasets::CreditCardSchema());
  EXPECT_EQ(datasets::GenerateAirbnbClean(10, rng).schema(),
            datasets::AirbnbSchema());
  EXPECT_EQ(datasets::GenerateBicycleClean(10, rng).schema(),
            datasets::BicycleSchema());
  EXPECT_EQ(datasets::GenerateGooglePlayClean(10, rng).schema(),
            datasets::GooglePlaySchema());
  EXPECT_EQ(datasets::GenerateNyTaxi(10, rng).schema(),
            datasets::NyTaxiSchema());
}

TEST(GeneratorTest, NyTaxiDimensionPrefixes) {
  Rng rng(4);
  for (int64_t dims : {5, 10, 18}) {
    Table t = datasets::GenerateNyTaxi(20, rng, dims);
    EXPECT_EQ(t.num_columns(), dims);
  }
}

TEST(GeneratorTest, CreditCardDependenciesHold) {
  Rng rng(5);
  Table t = datasets::GenerateCreditCard(2000, rng);
  const auto& birth = t.NumericByName("DAYS_BIRTH");
  const auto& employed = t.NumericByName("DAYS_EMPLOYED");
  for (int64_t r = 0; r < t.num_rows(); ++r) {
    // Clean data never has employment before birth (or before age 18).
    EXPECT_GT(employed[static_cast<size_t>(r)],
              birth[static_cast<size_t>(r)]);
    EXPECT_LT(employed[static_cast<size_t>(r)], 0.0);
    EXPECT_LT(birth[static_cast<size_t>(r)], 0.0);
  }
  // Income is positively associated with education (correlation ratio).
  std::vector<double> education_codes;
  LabelEncoder enc;
  enc.Fit(t.CategoricalByName("NAME_EDUCATION_TYPE"));
  for (const auto& v : t.CategoricalByName("NAME_EDUCATION_TYPE")) {
    education_codes.push_back(static_cast<double>(enc.Encode(v)));
  }
  EXPECT_GT(CorrelationRatio(education_codes,
                             t.NumericByName("AMT_INCOME_TOTAL")),
            0.2);
}

TEST(GeneratorTest, TaxiFareTracksDistance) {
  Rng rng(6);
  Table t = datasets::GenerateNyTaxi(2000, rng);
  std::vector<double> distance = t.NumericByName("trip_distance");
  std::vector<double> fare = t.NumericByName("fare_amount");
  EXPECT_GT(PearsonCorrelation(distance, fare), 0.8);
  // total = fare + tip + tolls + tax + extra, to the cent.
  const auto& total = t.NumericByName("total_amount");
  const auto& tip = t.NumericByName("tip_amount");
  const auto& tolls = t.NumericByName("tolls_amount");
  const auto& tax = t.NumericByName("mta_tax");
  const auto& extra = t.NumericByName("extra");
  for (int64_t r = 0; r < 100; ++r) {
    const size_t i = static_cast<size_t>(r);
    EXPECT_NEAR(total[i], fare[i] + tip[i] + tolls[i] + tax[i] + extra[i],
                1e-6);
  }
}

TEST(GeneratorTest, HotelBabiesImplyAdults) {
  Rng rng(7);
  Table t = datasets::GenerateHotelBooking(3000, rng);
  const auto& adults = t.NumericByName("adults");
  const auto& babies = t.NumericByName("babies");
  for (int64_t r = 0; r < t.num_rows(); ++r) {
    const size_t i = static_cast<size_t>(r);
    if (babies[i] > 0) EXPECT_GE(adults[i], 1.0);
  }
}

TEST(GeneratorTest, GooglePlayPriceTypeDependency) {
  Rng rng(8);
  Table t = datasets::GenerateGooglePlayClean(2000, rng);
  const auto& type = t.CategoricalByName("type");
  const auto& price = t.NumericByName("price_usd");
  for (int64_t r = 0; r < t.num_rows(); ++r) {
    const size_t i = static_cast<size_t>(r);
    if (type[i] == "Free") {
      EXPECT_EQ(price[i], 0.0);
    } else {
      EXPECT_GT(price[i], 0.0);
    }
  }
}

TEST(GeneratorTest, AirbnbNeighbourhoodMatchesBorough) {
  Rng rng(9);
  Table t = datasets::GenerateAirbnbClean(1000, rng);
  // Every (borough, neighbourhood) pair in clean data is consistent: a
  // neighbourhood appears under exactly one borough.
  std::map<std::string, std::set<std::string>> hood_to_borough;
  const auto& group = t.CategoricalByName("neighbourhood_group");
  const auto& hood = t.CategoricalByName("neighbourhood");
  for (int64_t r = 0; r < t.num_rows(); ++r) {
    hood_to_borough[hood[static_cast<size_t>(r)]].insert(
        group[static_cast<size_t>(r)]);
  }
  for (const auto& [h, boroughs] : hood_to_borough) {
    EXPECT_EQ(boroughs.size(), 1u) << h;
  }
}

TEST(GeneratorTest, DirtyVersionsReportCorruption) {
  Rng rng(10);
  std::vector<bool> flags;
  Table dirty = datasets::GenerateAirbnbDirty(4000, rng, &flags);
  ASSERT_EQ(flags.size(), 4000u);
  double rate = 0.0;
  for (bool f : flags) rate += f ? 1.0 : 0.0;
  rate /= 4000.0;
  EXPECT_NEAR(rate, 0.105, 0.03);  // paper: 10.52%

  Table bike_dirty = datasets::GenerateBicycleDirty(4000, rng, &flags);
  rate = 0.0;
  for (bool f : flags) rate += f ? 1.0 : 0.0;
  rate /= 4000.0;
  EXPECT_NEAR(rate, 0.211, 0.03);  // paper: 21.11%
}

TEST(GeneratorTest, CorruptKeepsUntouchedRowsIdentical) {
  Rng rng(11);
  Table clean = datasets::GenerateGooglePlayClean(500, rng);
  std::vector<bool> flags;
  Table dirty = datasets::CorruptGooglePlay(clean, rng, &flags);
  for (int64_t r = 0; r < clean.num_rows(); ++r) {
    const size_t i = static_cast<size_t>(r);
    if (flags[i]) continue;
    EXPECT_EQ(dirty.NumericByName("rating")[i],
              clean.NumericByName("rating")[i]);
    EXPECT_EQ(dirty.CategoricalByName("category")[i],
              clean.CategoricalByName("category")[i]);
  }
}

// ---- Error injection ----------------------------------------------------------

TEST(InjectorTest, MissingValuesFraction) {
  Rng rng(12);
  Table clean = datasets::GenerateCreditCard(1000, rng);
  ErrorInjector injector(1);
  InjectionResult result =
      injector.InjectMissing(clean, {"AMT_INCOME_TOTAL"}, 0.2);
  int64_t missing = 0;
  for (double v : result.table.NumericByName("AMT_INCOME_TOTAL")) {
    missing += IsMissing(v) ? 1 : 0;
  }
  EXPECT_EQ(missing, 200);
  EXPECT_NEAR(result.CorruptionRate(), 0.2, 1e-9);
}

TEST(InjectorTest, NumericAnomaliesOutOfRange) {
  Rng rng(13);
  Table clean = datasets::GenerateCreditCard(1000, rng);
  const double clean_max =
      *std::max_element(clean.NumericByName("AMT_INCOME_TOTAL").begin(),
                        clean.NumericByName("AMT_INCOME_TOTAL").end());
  ErrorInjector injector(2);
  InjectionResult result =
      injector.InjectNumericAnomalies(clean, {"AMT_INCOME_TOTAL"}, 0.1);
  int64_t out_of_range = 0;
  for (double v : result.table.NumericByName("AMT_INCOME_TOTAL")) {
    if (v > clean_max || v < 0.0) ++out_of_range;
  }
  EXPECT_EQ(out_of_range, 100);
}

TEST(InjectorTest, TyposCreateUnseenValues) {
  Rng rng(14);
  Table clean = datasets::GenerateCreditCard(500, rng);
  std::set<std::string> vocabulary(
      clean.CategoricalByName("OCCUPATION_TYPE").begin(),
      clean.CategoricalByName("OCCUPATION_TYPE").end());
  ErrorInjector injector(3);
  InjectionResult result =
      injector.InjectTypos(clean, {"OCCUPATION_TYPE"}, 0.2);
  int64_t unseen = 0;
  for (const auto& v : result.table.CategoricalByName("OCCUPATION_TYPE")) {
    if (!vocabulary.count(v)) ++unseen;
  }
  EXPECT_NEAR(static_cast<double>(unseen) / 500.0, 0.2, 0.02);
}

TEST(InjectorTest, QwertyTypoChangesOneCharacter) {
  Rng rng(15);
  for (int i = 0; i < 50; ++i) {
    const std::string original = "Subscriber";
    const std::string typo = MakeQwertyTypo(original, rng);
    EXPECT_NE(typo, original);
    EXPECT_EQ(typo.size(), original.size());
    int differences = 0;
    for (size_t j = 0; j < original.size(); ++j) {
      if (typo[j] != original[j]) ++differences;
    }
    EXPECT_EQ(differences, 1);
  }
}

TEST(InjectorTest, HotelConflictCreatesIllogicalRows) {
  Rng rng(16);
  Table clean = datasets::GenerateHotelBooking(1000, rng);
  ErrorInjector injector(4);
  InjectionResult result = injector.InjectHotelGroupConflict(clean, 0.2);
  int64_t conflicts = 0;
  const auto& customer = result.table.CategoricalByName("customer_type");
  const auto& adults = result.table.NumericByName("adults");
  const auto& babies = result.table.NumericByName("babies");
  for (size_t r = 0; r < 1000; ++r) {
    if (customer[r] == "Group" && adults[r] == 0.0 && babies[r] > 0.0) {
      ++conflicts;
      EXPECT_TRUE(result.row_corrupted[r]);
    }
  }
  EXPECT_EQ(conflicts, 200);
}

TEST(InjectorTest, CreditEmploymentConflictIsHiddenInRange) {
  Rng rng(17);
  Table clean = datasets::GenerateCreditCard(2000, rng);
  const auto& clean_employed = clean.NumericByName("DAYS_EMPLOYED");
  const double clean_min =
      *std::min_element(clean_employed.begin(), clean_employed.end());
  ErrorInjector injector(5);
  InjectionResult result =
      injector.InjectCreditEmploymentConflict(clean, 0.2);
  const auto& birth = result.table.NumericByName("DAYS_BIRTH");
  const auto& employed = result.table.NumericByName("DAYS_EMPLOYED");
  for (size_t r = 0; r < 2000; ++r) {
    if (!result.row_corrupted[r]) continue;
    // The conflict: employment precedes birth...
    EXPECT_LT(employed[r], birth[r]);
    // ...while staying inside the clean column range (hidden from range
    // constraints).
    EXPECT_GT(employed[r], clean_min - 1.0);
    EXPECT_LT(employed[r], 0.0);
  }
}

TEST(InjectorTest, CreditIncomeConflictStaysInRange) {
  Rng rng(18);
  Table clean = datasets::GenerateCreditCard(2000, rng);
  const auto& incomes = clean.NumericByName("AMT_INCOME_TOTAL");
  const double clean_min = *std::min_element(incomes.begin(), incomes.end());
  ErrorInjector injector(6);
  InjectionResult result = injector.InjectCreditIncomeConflict(clean, 0.2);
  for (size_t r = 0; r < 2000; ++r) {
    if (!result.row_corrupted[r]) continue;
    const double income = result.table.NumericByName("AMT_INCOME_TOTAL")[r];
    EXPECT_GE(income, std::min(clean_min, 16000.0) - 1.0);
    const std::string& education =
        result.table.CategoricalByName("NAME_EDUCATION_TYPE")[r];
    EXPECT_TRUE(education == "Academic degree" ||
                education == "Higher education");
  }
}

TEST(InjectorTest, DeterministicForSeed) {
  Rng rng(19);
  Table clean = datasets::GenerateCreditCard(300, rng);
  ErrorInjector a(7), b(7);
  Table ta = a.InjectMissing(clean, {"AMT_INCOME_TOTAL"}, 0.2).table;
  Table tb = b.InjectMissing(clean, {"AMT_INCOME_TOTAL"}, 0.2).table;
  for (size_t r = 0; r < 300; ++r) {
    EXPECT_EQ(IsMissing(ta.NumericByName("AMT_INCOME_TOTAL")[r]),
              IsMissing(tb.NumericByName("AMT_INCOME_TOTAL")[r]));
  }
}

}  // namespace
}  // namespace dquag
