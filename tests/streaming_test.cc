// End-to-end equivalence harness for the streaming validation pipeline.
//
// The streaming contract: validating a stream of chunks — any chunk size,
// any thread count, from memory or out-of-core from a CSV file — produces
// BIT-IDENTICAL results to validating the whole table at once: the same
// per-instance errors and flags, the same suspect features (repair
// targets), the same aggregate error statistics, the same dirty-batch
// verdict, and (when repairing) the same repaired cells. These tests
// enforce that contract across chunk sizes {1, 7, 256, > rows}, thread
// counts {1, 4}, all six dataset generators, and the concurrent service
// path; they run in the TSan and ASan CI jobs.

#include <cmath>
#include <cstdio>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/validation_service.h"
#include "data/error_injector.h"
#include "data/generators.h"
#include "data/table_chunk_reader.h"

namespace dquag {
namespace {

/// Fits a small pipeline on clean NY-Taxi rows (fast settings, enough for
/// non-degenerate weights — same recipe as engine_test).
DquagPipeline FitTaxiPipeline(int64_t rows = 160, int64_t epochs = 2) {
  Rng rng(7);
  Table clean = datasets::GenerateNyTaxi(rows, rng, /*dims=*/10);
  DquagPipelineOptions options;
  options.config.encoder.hidden_dim = 16;
  options.config.epochs = epochs;
  options.config.batch_size = 64;
  DquagPipeline pipeline(std::move(options));
  EXPECT_TRUE(pipeline.Fit(clean).ok());
  return pipeline;
}

/// Fresh taxi rows with injected anomalies so flagged rows exist.
Table DirtyTaxi(int64_t rows, uint64_t seed = 11) {
  Rng rng(seed);
  Table fresh = datasets::GenerateNyTaxi(rows, rng, /*dims=*/10);
  ErrorInjector injector(seed + 1);
  return injector.InjectNumericAnomalies(fresh, {"fare_amount"}, 0.15).table;
}

void ExpectSameInstance(const InstanceVerdict& a, const InstanceVerdict& b,
                        size_t row) {
  EXPECT_EQ(a.error, b.error) << "row " << row;
  EXPECT_EQ(a.flagged, b.flagged) << "row " << row;
  EXPECT_EQ(a.suspect_features, b.suspect_features) << "row " << row;
}

/// Asserts a stream run is bit-identical to a whole-table verdict:
/// reassembled per-instance verdicts, global flagged rows + repair
/// targets, aggregate stats, and the dirty rule.
void ExpectStreamEqualsBatch(const StreamVerdict& stream,
                             const std::vector<InstanceVerdict>& reassembled,
                             const BatchVerdict& batch) {
  ASSERT_EQ(reassembled.size(), batch.instances.size());
  for (size_t r = 0; r < reassembled.size(); ++r) {
    ExpectSameInstance(reassembled[r], batch.instances[r], r);
  }
  EXPECT_EQ(stream.total_rows,
            static_cast<int64_t>(batch.instances.size()));
  EXPECT_EQ(stream.flagged_rows, batch.flagged_rows);
  ASSERT_EQ(stream.flagged_instances.size(), batch.flagged_rows.size());
  for (size_t i = 0; i < stream.flagged_rows.size(); ++i) {
    ExpectSameInstance(stream.flagged_instances[i],
                       batch.instances[stream.flagged_rows[i]],
                       stream.flagged_rows[i]);
  }
  EXPECT_EQ(stream.flagged_fraction, batch.flagged_fraction);
  EXPECT_EQ(stream.is_dirty, batch.is_dirty);
  EXPECT_EQ(stream.threshold, batch.threshold);

  // Aggregate error statistics: the streaming accumulator must reproduce
  // the batch-path forward pass bit for bit.
  const StreamErrorStats expected = StreamErrorStats::FromVerdict(batch);
  EXPECT_EQ(stream.error_stats.count, expected.count);
  EXPECT_EQ(stream.error_stats.sum, expected.sum);
  EXPECT_EQ(stream.error_stats.sum_squares, expected.sum_squares);
  EXPECT_EQ(stream.error_stats.min, expected.min);
  EXPECT_EQ(stream.error_stats.max, expected.max);
}

/// Streams `table` through `streamer`, reassembling the full per-instance
/// verdict vector from the ordered chunk callbacks.
StreamVerdict RunStream(const StreamingValidator& streamer,
                        const Table& table, int64_t chunk_rows,
                        std::vector<InstanceVerdict>* reassembled) {
  TableViewChunkReader reader(&table, chunk_rows);
  reassembled->clear();
  int64_t last_index = -1;
  auto verdict = streamer.Run(reader, [&](const StreamChunk& chunk) {
    // Callbacks arrive strictly in chunk order, on the calling thread.
    EXPECT_EQ(chunk.chunk_index, last_index + 1);
    last_index = chunk.chunk_index;
    EXPECT_EQ(chunk.row_offset,
              static_cast<int64_t>(reassembled->size()));
    reassembled->insert(reassembled->end(), chunk.verdict->instances.begin(),
                        chunk.verdict->instances.end());
  });
  EXPECT_TRUE(verdict.ok()) << verdict.status().ToString();
  return std::move(verdict).value();
}

// ---- The headline matrix: chunk sizes x thread counts ----------------------

TEST(StreamingEquivalenceTest, ChunkSizeAndThreadCountInvariance) {
  DquagPipeline pipeline = FitTaxiPipeline();
  const Table fresh = DirtyTaxi(300);
  const BatchVerdict batch = pipeline.Validate(fresh);
  ASSERT_FALSE(batch.flagged_rows.empty());  // otherwise the test is vacuous
  ASSERT_LT(batch.flagged_rows.size(),
            static_cast<size_t>(fresh.num_rows()));

  for (size_t threads : {size_t{1}, size_t{4}}) {
    ThreadPool pool(threads);
    StreamingValidatorOptions options;
    options.pool = &pool;
    StreamingValidator streamer(&pipeline, options);
    for (int64_t chunk_rows :
         {int64_t{1}, int64_t{7}, int64_t{256}, fresh.num_rows() + 5}) {
      SCOPED_TRACE("threads=" + std::to_string(threads) +
                   " chunk=" + std::to_string(chunk_rows));
      std::vector<InstanceVerdict> reassembled;
      const StreamVerdict stream =
          RunStream(streamer, fresh, chunk_rows, &reassembled);
      ExpectStreamEqualsBatch(stream, reassembled, batch);
      EXPECT_EQ(stream.total_chunks,
                (fresh.num_rows() + chunk_rows - 1) / chunk_rows);
    }
  }
}

// ---- Every dataset generator ------------------------------------------------

struct GeneratorCase {
  const char* name;
  Table (*clean)(int64_t rows, Rng& rng);
  Table (*fresh)(int64_t rows, Rng& rng);
};

Table TaxiClean(int64_t rows, Rng& rng) {
  return datasets::GenerateNyTaxi(rows, rng);
}
Table HotelFresh(int64_t rows, Rng& rng) {
  Table clean = datasets::GenerateHotelBooking(rows, rng);
  ErrorInjector injector(29);
  return injector.InjectHotelGroupConflict(clean, 0.2).table;
}
Table CreditFresh(int64_t rows, Rng& rng) {
  Table clean = datasets::GenerateCreditCard(rows, rng);
  ErrorInjector injector(31);
  return injector.InjectMissing(clean, {"AMT_INCOME_TOTAL"}, 0.2).table;
}
Table TaxiFresh(int64_t rows, Rng& rng) {
  Table clean = datasets::GenerateNyTaxi(rows, rng);
  ErrorInjector injector(37);
  return injector.InjectNumericAnomalies(clean, {"fare_amount"}, 0.2).table;
}
Table AirbnbFresh(int64_t rows, Rng& rng) {
  return datasets::GenerateAirbnbDirty(rows, rng);
}
Table BicycleFresh(int64_t rows, Rng& rng) {
  return datasets::GenerateBicycleDirty(rows, rng);
}
Table GooglePlayFresh(int64_t rows, Rng& rng) {
  return datasets::GenerateGooglePlayDirty(rows, rng);
}

class StreamingGeneratorTest
    : public ::testing::TestWithParam<GeneratorCase> {};

TEST_P(StreamingGeneratorTest, StreamEqualsBatch) {
  const GeneratorCase& item = GetParam();
  Rng rng(23);
  Table clean = item.clean(140, rng);
  DquagPipelineOptions options;
  options.config.encoder.hidden_dim = 8;
  options.config.epochs = 1;
  options.config.batch_size = 64;
  DquagPipeline pipeline(std::move(options));
  ASSERT_TRUE(pipeline.Fit(clean).ok());

  Table fresh = item.fresh(90, rng);
  const BatchVerdict batch = pipeline.Validate(fresh);

  StreamingValidator streamer(&pipeline);  // global pool
  std::vector<InstanceVerdict> reassembled;
  const StreamVerdict stream = RunStream(streamer, fresh, 7, &reassembled);
  ExpectStreamEqualsBatch(stream, reassembled, batch);
}

INSTANTIATE_TEST_SUITE_P(
    AllGenerators, StreamingGeneratorTest,
    ::testing::Values(
        GeneratorCase{"hotel", &datasets::GenerateHotelBooking, &HotelFresh},
        GeneratorCase{"credit", &datasets::GenerateCreditCard, &CreditFresh},
        GeneratorCase{"taxi", &TaxiClean, &TaxiFresh},
        GeneratorCase{"airbnb", &datasets::GenerateAirbnbClean,
                      &AirbnbFresh},
        GeneratorCase{"bicycle", &datasets::GenerateBicycleClean,
                      &BicycleFresh},
        GeneratorCase{"googleplay", &datasets::GenerateGooglePlayClean,
                      &GooglePlayFresh}),
    [](const ::testing::TestParamInfo<GeneratorCase>& info) {
      return std::string(info.param.name);
    });

// ---- Out-of-core CSV path ---------------------------------------------------

TEST(StreamingCsvTest, FileStreamMatchesWholeTableOfTheSameFile) {
  DquagPipeline pipeline = FitTaxiPipeline();
  const Table fresh = DirtyTaxi(150);

  const std::string path = ::testing::TempDir() + "/streaming_test.csv";
  ASSERT_TRUE(WriteCsvFile(fresh.ToCsv(), path).ok());

  // Whole-table reference: parse the SAME file in one go (CSV round trips
  // through %.10g, so the file — not the in-memory source — is the truth).
  auto doc = ReadCsvFile(path);
  ASSERT_TRUE(doc.ok());
  auto whole = Table::FromCsv(fresh.schema(), *doc);
  ASSERT_TRUE(whole.ok());
  const BatchVerdict batch = pipeline.Validate(*whole);

  // Tiny IO blocks force quoted fields and records across block
  // boundaries; chunk 7 forces ragged chunk tails.
  CsvChunkReaderOptions reader_options;
  reader_options.chunk_rows = 7;
  reader_options.io_block_bytes = 64;
  auto reader = CsvChunkReader::Open(path, fresh.schema(), reader_options);
  ASSERT_TRUE(reader.ok()) << reader.status().ToString();

  StreamingValidator streamer(&pipeline);
  std::vector<InstanceVerdict> reassembled;
  int64_t rows_seen = 0;
  auto verdict = streamer.Run(**reader, [&](const StreamChunk& chunk) {
    rows_seen += chunk.rows->num_rows();
    reassembled.insert(reassembled.end(), chunk.verdict->instances.begin(),
                       chunk.verdict->instances.end());
  });
  ASSERT_TRUE(verdict.ok()) << verdict.status().ToString();
  EXPECT_EQ(rows_seen, whole->num_rows());
  EXPECT_EQ((*reader)->rows_delivered(), whole->num_rows());
  ExpectStreamEqualsBatch(*verdict, reassembled, batch);
  std::remove(path.c_str());
}

TEST(StreamingCsvTest, MalformedRowsFailWithRowAndColumnContext) {
  const Schema schema = datasets::NyTaxiSchema(/*dims=*/10);
  const std::string path = ::testing::TempDir() + "/streaming_bad.csv";

  // Row 2's fare_amount is not numeric.
  Rng rng(3);
  Table good = datasets::GenerateNyTaxi(3, rng, /*dims=*/10);
  CsvDocument doc = good.ToCsv();
  doc.rows[1][2] = "not_a_number";
  ASSERT_TRUE(WriteCsvFile(doc, path).ok());

  auto reader = CsvChunkReader::Open(path, schema, {.chunk_rows = 8});
  ASSERT_TRUE(reader.ok());
  Table chunk;
  auto rows = (*reader)->Next(chunk);
  ASSERT_FALSE(rows.ok());
  EXPECT_NE(rows.status().message().find("row 2"), std::string::npos)
      << rows.status().ToString();
  EXPECT_NE(rows.status().message().find("fare_amount"), std::string::npos)
      << rows.status().ToString();

  // Width mismatch carries the row number too.
  doc.rows[1][2] = "5.0";
  doc.rows[2].pop_back();
  ASSERT_TRUE(WriteCsvFile(doc, path).ok());
  // The whole-document parser rejects ragged rows at tokenization...
  EXPECT_FALSE(ReadCsvFile(path).ok());
  // ...and a schema'd streaming read names the row.
  auto reader2 = CsvChunkReader::Open(path, schema, {.chunk_rows = 8});
  ASSERT_TRUE(reader2.ok());
  auto rows2 = (*reader2)->Next(chunk);
  ASSERT_FALSE(rows2.ok());
  EXPECT_NE(rows2.status().message().find("row 3"), std::string::npos)
      << rows2.status().ToString();

  // Header mismatch fails at Open.
  doc.header[0] = "wrong_column";
  doc.rows[2].push_back("x");
  ASSERT_TRUE(WriteCsvFile(doc, path).ok());
  EXPECT_FALSE(CsvChunkReader::Open(path, schema, {}).ok());
  std::remove(path.c_str());
}

// ---- Streaming repair -------------------------------------------------------

TEST(StreamingRepairTest, ChunkRepairsConcatenateToBatchRepair) {
  DquagPipeline pipeline = FitTaxiPipeline();
  const Table fresh = DirtyTaxi(200);
  const BatchVerdict batch = pipeline.Validate(fresh);
  const RepairResult whole = pipeline.Repair(fresh, batch);
  ASSERT_GT(whole.cells_repaired, 0);

  StreamingValidatorOptions options;
  options.repair = true;
  StreamingValidator streamer(&pipeline, options);
  TableViewChunkReader reader(&fresh, 7);
  Table stitched(fresh.schema());
  auto verdict = streamer.Run(reader, [&](const StreamChunk& chunk) {
    ASSERT_NE(chunk.repair, nullptr);
    stitched.AppendRows(chunk.repair->repaired);
  });
  ASSERT_TRUE(verdict.ok());

  EXPECT_EQ(verdict->cells_repaired, whole.cells_repaired);
  EXPECT_EQ(verdict->instances_repaired, whole.instances_repaired);
  ASSERT_EQ(stitched.num_rows(), whole.repaired.num_rows());
  for (int64_t c = 0; c < fresh.num_columns(); ++c) {
    if (fresh.schema().column(c).type == ColumnType::kNumeric) {
      for (int64_t r = 0; r < stitched.num_rows(); ++r) {
        const size_t i = static_cast<size_t>(r);
        const double a = stitched.Numeric(c)[i];
        const double b = whole.repaired.Numeric(c)[i];
        EXPECT_TRUE(a == b || (std::isnan(a) && std::isnan(b)))
            << "col " << c << " row " << r;
      }
    } else {
      EXPECT_EQ(stitched.Categorical(c), whole.repaired.Categorical(c));
    }
  }
}

// ---- Bounded memory ---------------------------------------------------------

TEST(StreamingMemoryTest, ChunkBufferingIsBoundedAndRowCountIndependent) {
  DquagPipeline pipeline = FitTaxiPipeline();

  // Serial path: exactly one chunk resident at a time, deterministically.
  {
    ThreadPool pool(1);
    StreamingValidatorOptions options;
    options.pool = &pool;
    StreamingValidator streamer(&pipeline, options);
    for (int64_t rows : {int64_t{320}, int64_t{1280}}) {
      const Table data = DirtyTaxi(rows);
      std::vector<InstanceVerdict> scratch;
      const StreamVerdict stream = RunStream(streamer, data, 64, &scratch);
      EXPECT_EQ(stream.peak_buffered_rows, 64);
      EXPECT_EQ(stream.peak_in_flight_chunks, 1);
    }
  }

  // Parallel path: bounded by max_in_flight * chunk_rows regardless of
  // stream length.
  {
    ThreadPool pool(4);
    StreamingValidatorOptions options;
    options.pool = &pool;
    options.max_in_flight = 3;
    StreamingValidator streamer(&pipeline, options);
    for (int64_t rows : {int64_t{320}, int64_t{1280}}) {
      const Table data = DirtyTaxi(rows);
      std::vector<InstanceVerdict> scratch;
      const StreamVerdict stream = RunStream(streamer, data, 64, &scratch);
      EXPECT_LE(stream.peak_buffered_rows, 3 * 64);
      EXPECT_LE(stream.peak_in_flight_chunks, 3);
    }
  }
}

// ---- Service integration ----------------------------------------------------

TEST(ServiceStreamTest, ValidateStreamMatchesValidateAndCountsStats) {
  ValidationService service(FitTaxiPipeline());
  const Table fresh = DirtyTaxi(180);
  const BatchVerdict batch = service.Validate(fresh);

  TableViewChunkReader reader(&fresh, 32);
  std::vector<InstanceVerdict> reassembled;
  auto stream = service.ValidateStream(reader, [&](const StreamChunk& c) {
    reassembled.insert(reassembled.end(), c.verdict->instances.begin(),
                       c.verdict->instances.end());
  });
  ASSERT_TRUE(stream.ok());
  ExpectStreamEqualsBatch(*stream, reassembled, batch);

  const ValidationServiceStats stats = service.stats();
  EXPECT_EQ(stats.batches_validated, 2);  // one batch call + one stream
  EXPECT_EQ(stats.rows_validated, 2 * fresh.num_rows());
  EXPECT_EQ(stats.rows_flagged,
            2 * static_cast<int64_t>(batch.flagged_rows.size()));
}

TEST(ServiceStreamTest, ObserveStreamFeedsMonitorLikeObserve) {
  ValidationService service(FitTaxiPipeline());
  const Table fresh = DirtyTaxi(120);

  const MonitorObservation from_batch = service.Observe(fresh);
  TableViewChunkReader reader(&fresh, 16);
  auto from_stream = service.ObserveStream(reader);
  ASSERT_TRUE(from_stream.ok());
  EXPECT_EQ(from_stream->flagged_fraction, from_batch.flagged_fraction);
  EXPECT_EQ(from_stream->batch_dirty, from_batch.batch_dirty);
  EXPECT_EQ(from_stream->batch_index, from_batch.batch_index + 1);
  EXPECT_EQ(service.monitor_history().size(), 2u);
}

TEST(ServiceStreamTest, ConcurrentStreamingClientsMatchSerial) {
  ValidationService service(FitTaxiPipeline());
  const Table fresh = DirtyTaxi(200);
  const BatchVerdict batch = service.Validate(fresh);

  constexpr int kClients = 4;
  constexpr int kRounds = 3;
  std::vector<std::vector<size_t>> flagged(kClients);
  std::vector<std::thread> clients;
  for (int t = 0; t < kClients; ++t) {
    clients.emplace_back([&, t] {
      for (int r = 0; r < kRounds; ++r) {
        TableViewChunkReader reader(&fresh, 16);
        auto stream = service.ValidateStream(reader);
        ASSERT_TRUE(stream.ok());
        flagged[static_cast<size_t>(t)] = stream->flagged_rows;
        EXPECT_EQ(stream->flagged_fraction, batch.flagged_fraction);
        EXPECT_EQ(stream->is_dirty, batch.is_dirty);
      }
    });
  }
  for (std::thread& t : clients) t.join();
  for (const auto& rows : flagged) EXPECT_EQ(rows, batch.flagged_rows);
}

TEST(StreamingEquivalenceTest, RunFromInsidePoolWorkerDegradesSerially) {
  DquagPipeline pipeline = FitTaxiPipeline();
  const Table fresh = DirtyTaxi(100);
  const BatchVerdict batch = pipeline.Validate(fresh);

  StreamingValidator streamer(&pipeline);
  StreamVerdict from_worker;
  RunTasksAndWait(GlobalThreadPool(), 1, [&](int64_t) {
    TableViewChunkReader reader(&fresh, 16);
    auto verdict = streamer.Run(reader);
    ASSERT_TRUE(verdict.ok());
    from_worker = std::move(verdict).value();
  });
  EXPECT_EQ(from_worker.flagged_rows, batch.flagged_rows);
  EXPECT_EQ(from_worker.flagged_fraction, batch.flagged_fraction);
  EXPECT_EQ(from_worker.error_stats.sum,
            StreamErrorStats::FromVerdict(batch).sum);
}

}  // namespace
}  // namespace dquag
