// Tests for binary I/O primitives and pipeline checkpointing.

#include <cstdio>

#include <gtest/gtest.h>

#include "core/pipeline.h"
#include "data/error_injector.h"
#include "data/generators.h"
#include "util/binary_io.h"

namespace dquag {
namespace {

TEST(BinaryIoTest, PrimitiveRoundTrip) {
  BinaryWriter w;
  w.WriteI64(-42);
  w.WriteU64(0xdeadbeefULL);
  w.WriteDouble(3.14159);
  w.WriteFloat(2.5f);
  w.WriteString("hello \0world");  // embedded NUL truncated by literal; fine
  w.WriteDoubleVector({1.0, 2.0, 3.0});
  float floats[3] = {1.0f, -1.0f, 0.5f};
  w.WriteFloatArray(floats, 3);

  BinaryReader r(w.buffer());
  EXPECT_EQ(*r.ReadI64(), -42);
  EXPECT_EQ(*r.ReadU64(), 0xdeadbeefULL);
  EXPECT_DOUBLE_EQ(*r.ReadDouble(), 3.14159);
  EXPECT_FLOAT_EQ(*r.ReadFloat(), 2.5f);
  EXPECT_EQ(*r.ReadString(), "hello ");
  EXPECT_EQ((*r.ReadDoubleVector())[2], 3.0);
  float back[3];
  ASSERT_TRUE(r.ReadFloatArray(back, 3).ok());
  EXPECT_EQ(back[1], -1.0f);
  EXPECT_TRUE(r.AtEnd());
}

TEST(BinaryIoTest, TruncationIsError) {
  BinaryWriter w;
  w.WriteI64(7);
  BinaryReader r(w.buffer().substr(0, 4));
  EXPECT_FALSE(r.ReadI64().ok());
}

TEST(BinaryIoTest, StringSizeBeyondBufferIsError) {
  BinaryWriter w;
  w.WriteU64(1'000'000);  // claims a 1MB string with no payload
  BinaryReader r(w.buffer());
  EXPECT_FALSE(r.ReadString().ok());
}

TEST(BinaryIoTest, FloatArrayCountMismatchIsError) {
  BinaryWriter w;
  float data[2] = {1, 2};
  w.WriteFloatArray(data, 2);
  BinaryReader r(w.buffer());
  float out[3];
  EXPECT_FALSE(r.ReadFloatArray(out, 3).ok());
}

TEST(BinaryIoTest, FileRoundTrip) {
  BinaryWriter w;
  w.WriteString("persisted");
  const std::string path = "/tmp/dquag_binary_io_test.bin";
  ASSERT_TRUE(w.SaveToFile(path).ok());
  auto r = BinaryReader::FromFile(path);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r->ReadString(), "persisted");
  std::remove(path.c_str());
}

class CheckpointTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    Rng rng(88);
    clean_ = new Table(datasets::GenerateCreditCard(1200, rng));
    DquagPipelineOptions options;
    options.config.encoder.hidden_dim = 32;
    options.config.epochs = 8;
    options.config.seed = 88;
    pipeline_ = new DquagPipeline(std::move(options));
    ASSERT_TRUE(pipeline_->Fit(*clean_).ok());
  }
  static void TearDownTestSuite() {
    delete pipeline_;
    delete clean_;
  }
  static Table* clean_;
  static DquagPipeline* pipeline_;
};

Table* CheckpointTest::clean_ = nullptr;
DquagPipeline* CheckpointTest::pipeline_ = nullptr;

TEST_F(CheckpointTest, SaveLoadRoundTripProducesIdenticalVerdicts) {
  const std::string path = "/tmp/dquag_checkpoint_test.bin";
  ASSERT_TRUE(pipeline_->Save(path).ok());
  auto loaded = DquagPipeline::Load(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_TRUE(loaded->fitted());
  EXPECT_DOUBLE_EQ(loaded->threshold(), pipeline_->threshold());
  EXPECT_EQ(loaded->relationships().size(),
            pipeline_->relationships().size());

  // Identical behaviour on a dirty batch.
  Rng rng(89);
  Table probe = datasets::GenerateCreditCard(400, rng);
  ErrorInjector injector(90);
  Table dirty = injector.InjectCreditIncomeConflict(probe, 0.2).table;
  BatchVerdict original = pipeline_->Validate(dirty);
  BatchVerdict restored = loaded->Validate(dirty);
  EXPECT_EQ(original.is_dirty, restored.is_dirty);
  ASSERT_EQ(original.instances.size(), restored.instances.size());
  for (size_t i = 0; i < original.instances.size(); ++i) {
    EXPECT_NEAR(original.instances[i].error, restored.instances[i].error,
                1e-7);
  }
  std::remove(path.c_str());
}

TEST_F(CheckpointTest, LoadedPipelineCanRepair) {
  const std::string path = "/tmp/dquag_checkpoint_repair_test.bin";
  ASSERT_TRUE(pipeline_->Save(path).ok());
  auto loaded = DquagPipeline::Load(path);
  ASSERT_TRUE(loaded.ok());
  Rng rng(91);
  Table probe = datasets::GenerateCreditCard(300, rng);
  ErrorInjector injector(92);
  Table dirty =
      injector.InjectNumericAnomalies(probe, {"AMT_INCOME_TOTAL"}, 0.2)
          .table;
  RepairResult repair = loaded->ValidateAndRepair(dirty);
  EXPECT_GT(repair.cells_repaired, 0);
  std::remove(path.c_str());
}

TEST(CheckpointErrorTest, SaveUnfittedFails) {
  DquagPipeline pipeline;
  EXPECT_EQ(pipeline.Save("/tmp/never.bin").code(),
            StatusCode::kFailedPrecondition);
}

TEST(CheckpointErrorTest, LoadRejectsGarbage) {
  const std::string path = "/tmp/dquag_garbage.bin";
  {
    BinaryWriter w;
    w.WriteU64(0x1234);  // wrong magic
    ASSERT_TRUE(w.SaveToFile(path).ok());
  }
  EXPECT_FALSE(DquagPipeline::Load(path).ok());
  EXPECT_FALSE(DquagPipeline::Load("/tmp/does_not_exist.bin").ok());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace dquag
