// Golden-file regression tests for the dataset generators and the error
// injector.
//
// Every generator is seeded RNG + arithmetic, so a fixed seed must produce
// a byte-identical table forever; these tests pin that down against CSV
// golden files in tests/golden/. A mismatch means a generator's sampling
// sequence changed — which silently invalidates every experiment, bench
// and paper-figure reproduction built on "same seed, same data". To
// intentionally regenerate after a deliberate change:
//
//   DQUAG_UPDATE_GOLDENS=1 ./dataset_golden_test
//
// ErrorInjector determinism is pinned via FNV-1a hashes of a hand-built
// table (no libm in the pipeline, so the hashes are platform-stable) plus
// a same-seed double-run identity check.

#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "data/error_injector.h"
#include "data/generators.h"

namespace dquag {
namespace {

bool UpdateGoldens() {
  const char* value = std::getenv("DQUAG_UPDATE_GOLDENS");
  return value != nullptr && *value != '\0' && *value != '0';
}

std::string GoldenPath(const std::string& name) {
  return std::string(DQUAG_GOLDEN_DIR) + "/" + name;
}

void ExpectMatchesGolden(const Table& table, const std::string& name) {
  const std::string actual = WriteCsvString(table.ToCsv());
  const std::string path = GoldenPath(name);
  if (UpdateGoldens()) {
    std::ofstream out(path, std::ios::binary);
    ASSERT_TRUE(out.good()) << "cannot write " << path;
    out << actual;
    return;
  }
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.good()) << "missing golden file " << path
                         << " — run with DQUAG_UPDATE_GOLDENS=1";
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string expected = buffer.str();
  // Byte-identical, including every %.10g-formatted numeric cell. Compare
  // sizes first for a readable failure before diffing content.
  ASSERT_EQ(actual.size(), expected.size())
      << name << " changed size — if intentional, regenerate with "
      << "DQUAG_UPDATE_GOLDENS=1";
  EXPECT_TRUE(actual == expected)
      << name << " is no longer byte-identical for its fixed seed — if "
      << "intentional, regenerate with DQUAG_UPDATE_GOLDENS=1";
}

// ---- Generators: fixed seed -> byte-identical CSV ---------------------------

TEST(DatasetGoldenTest, HotelBooking) {
  Rng rng(101);
  ExpectMatchesGolden(datasets::GenerateHotelBooking(48, rng),
                      "hotel_booking_seed101_48.csv");
}

TEST(DatasetGoldenTest, CreditCard) {
  Rng rng(102);
  ExpectMatchesGolden(datasets::GenerateCreditCard(48, rng),
                      "credit_card_seed102_48.csv");
}

TEST(DatasetGoldenTest, NyTaxi) {
  Rng rng(103);
  ExpectMatchesGolden(datasets::GenerateNyTaxi(48, rng),
                      "ny_taxi_seed103_48.csv");
}

TEST(DatasetGoldenTest, AirbnbCleanAndDirty) {
  Rng rng(104);
  const Table clean = datasets::GenerateAirbnbClean(48, rng);
  ExpectMatchesGolden(clean, "airbnb_clean_seed104_48.csv");
  Rng dirt_rng(1104);
  ExpectMatchesGolden(datasets::CorruptAirbnb(clean, dirt_rng),
                      "airbnb_dirty_seed1104_48.csv");
}

TEST(DatasetGoldenTest, BicycleCleanAndDirty) {
  Rng rng(105);
  const Table clean = datasets::GenerateBicycleClean(48, rng);
  ExpectMatchesGolden(clean, "bicycle_clean_seed105_48.csv");
  Rng dirt_rng(1105);
  ExpectMatchesGolden(datasets::CorruptBicycle(clean, dirt_rng),
                      "bicycle_dirty_seed1105_48.csv");
}

TEST(DatasetGoldenTest, GooglePlayCleanAndDirty) {
  Rng rng(106);
  const Table clean = datasets::GenerateGooglePlayClean(48, rng);
  ExpectMatchesGolden(clean, "google_play_clean_seed106_48.csv");
  Rng dirt_rng(1106);
  ExpectMatchesGolden(datasets::CorruptGooglePlay(clean, dirt_rng),
                      "google_play_dirty_seed1106_48.csv");
}

// ---- ErrorInjector: fixed seed -> identical table hash ----------------------

/// FNV-1a 64-bit over the CSV serialization.
uint64_t TableHash(const Table& table) {
  const std::string text = WriteCsvString(table.ToCsv());
  uint64_t h = 1469598103934665603ULL;
  for (unsigned char c : text) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  return h;
}

/// Hand-built fixture: exact binary fractions and short strings only, so
/// generation, injection and %.10g serialization never touch libm and the
/// hashes below hold on every platform.
Table InjectorFixture() {
  Table t(Schema({{"x", ColumnType::kNumeric, "value"},
                  {"label", ColumnType::kCategorical, "word"}}));
  for (int r = 0; r < 64; ++r) {
    t.AppendRow({static_cast<double>(r) * 1.5 - 3.0},
                {"word" + std::to_string(r % 5)});
  }
  return t;
}

TEST(InjectorGoldenTest, FixedSeedHashesAreStable) {
  const Table fixture = InjectorFixture();
  EXPECT_EQ(TableHash(fixture), 0xc944816269357a5dULL);

  ErrorInjector missing(7);
  EXPECT_EQ(TableHash(missing.InjectMissing(fixture, {"x"}, 0.25).table),
            0x47db626f5b8331a3ULL);

  ErrorInjector anomalies(8);
  EXPECT_EQ(TableHash(anomalies.InjectNumericAnomalies(fixture, {"x"}, 0.25)
                          .table),
            0x3970b6d1c88b70d3ULL);

  ErrorInjector typos(9);
  EXPECT_EQ(TableHash(typos.InjectTypos(fixture, {"label"}, 0.25).table),
            0x906c5fd50e76e0f2ULL);
}

TEST(InjectorGoldenTest, SameSeedIsByteIdentical) {
  const Table fixture = InjectorFixture();
  for (uint64_t seed : {1ULL, 42ULL, 31337ULL}) {
    ErrorInjector a(seed), b(seed);
    EXPECT_EQ(TableHash(a.InjectMissing(fixture, {"x"}, 0.2).table),
              TableHash(b.InjectMissing(fixture, {"x"}, 0.2).table));
    EXPECT_EQ(TableHash(a.InjectTypos(fixture, {"label"}, 0.2).table),
              TableHash(b.InjectTypos(fixture, {"label"}, 0.2).table));
    // a and b consumed identical randomness, so they stay in lockstep
    // across successive injections.
    EXPECT_EQ(
        TableHash(a.InjectNumericAnomalies(fixture, {"x"}, 0.3).table),
        TableHash(b.InjectNumericAnomalies(fixture, {"x"}, 0.3).table));
  }
}

}  // namespace
}  // namespace dquag
