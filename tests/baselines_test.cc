// Behavioural tests for the baseline validators: each system must catch the
// errors its mechanism can see and miss the ones it cannot (Table 1's
// qualitative pattern is enforced here as unit tests).

#include <gtest/gtest.h>

#include "baselines/adqv.h"
#include "baselines/column_profile.h"
#include "baselines/deequ.h"
#include "baselines/gate.h"
#include "baselines/tfdv.h"
#include "data/batch_sampler.h"
#include "data/error_injector.h"
#include "data/generators.h"

namespace dquag {
namespace {

class BaselinesTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Rng rng(42);
    clean_ = datasets::GenerateCreditCard(3000, rng);
    ErrorInjector injector(1);
    anomalies_ = injector
                     .InjectNumericAnomalies(
                         clean_, {"AMT_INCOME_TOTAL", "DAYS_BIRTH"}, 0.2)
                     .table;
    typos_ = injector.InjectTypos(clean_, {"OCCUPATION_TYPE"}, 0.2).table;
    missing_ =
        injector.InjectMissing(clean_, {"AMT_INCOME_TOTAL"}, 0.2).table;
    conflict_ = injector.InjectCreditEmploymentConflict(clean_, 0.2).table;
  }

  Table clean_;
  Table anomalies_;
  Table typos_;
  Table missing_;
  Table conflict_;
};

// ---- Column profiling ----------------------------------------------------------

TEST_F(BaselinesTest, ProfileBasics) {
  const auto profiles = ProfileTable(clean_);
  ASSERT_EQ(profiles.size(), static_cast<size_t>(clean_.num_columns()));
  const int64_t income_idx = clean_.schema().IndexOf("AMT_INCOME_TOTAL");
  const ColumnProfile& income = profiles[static_cast<size_t>(income_idx)];
  EXPECT_EQ(income.type, ColumnType::kNumeric);
  EXPECT_DOUBLE_EQ(income.completeness, 1.0);
  EXPECT_GT(income.mean, 0.0);
  EXPECT_LE(income.q01, income.q99);
  EXPECT_LE(income.min, income.q01);
  EXPECT_GE(income.max, income.q99);

  const int64_t gender_idx = clean_.schema().IndexOf("CODE_GENDER");
  const ColumnProfile& gender = profiles[static_cast<size_t>(gender_idx)];
  EXPECT_EQ(gender.domain.size(), 2u);
  double total_freq = 0.0;
  for (const auto& [value, freq] : gender.frequencies) total_freq += freq;
  EXPECT_NEAR(total_freq, 1.0, 1e-9);
}

TEST_F(BaselinesTest, DescriptorsHaveStableSize) {
  const auto d1 = BatchDescriptor(clean_);
  Rng rng(2);
  const auto d2 = BatchDescriptor(SampleBatch(clean_, 100, rng));
  EXPECT_EQ(d1.size(), d2.size());
  EXPECT_EQ(d1.size(),
            BatchDescriptorNames(clean_.schema()).size());
  const auto r1 = RobustBatchDescriptor(clean_);
  const auto r2 = RobustBatchDescriptor(SampleBatch(clean_, 100, rng));
  EXPECT_EQ(r1.size(), r2.size());
}

// ---- Deequ ---------------------------------------------------------------------

TEST_F(BaselinesTest, DeequExpertCatchesOrdinaryErrors) {
  DeequValidator expert(BaselineMode::kExpert);
  expert.Fit(clean_);
  EXPECT_TRUE(expert.IsDirty(anomalies_));
  EXPECT_TRUE(expert.IsDirty(typos_));
  EXPECT_TRUE(expert.IsDirty(missing_));
}

TEST_F(BaselinesTest, DeequExpertPassesCleanBatches) {
  DeequValidator expert(BaselineMode::kExpert);
  expert.Fit(clean_);
  Rng rng(3);
  int flagged = 0;
  for (int i = 0; i < 10; ++i) {
    if (expert.IsDirty(SampleBatch(clean_, 300, rng))) ++flagged;
  }
  EXPECT_LE(flagged, 1);
}

TEST_F(BaselinesTest, DeequExpertBlindToHiddenConflict) {
  DeequValidator expert(BaselineMode::kExpert);
  expert.Fit(clean_);
  EXPECT_FALSE(expert.IsDirty(conflict_));
}

TEST_F(BaselinesTest, DeequAutoIsTooStrict) {
  DeequValidator auto_mode(BaselineMode::kAuto);
  auto_mode.Fit(clean_);
  Rng rng(4);
  int flagged = 0;
  for (int i = 0; i < 10; ++i) {
    if (auto_mode.IsDirty(SampleBatch(clean_, 300, rng))) ++flagged;
  }
  // The pinned-statistics suggestions misfire on most clean batches.
  EXPECT_GE(flagged, 7);
}

// ---- TFDV ----------------------------------------------------------------------

TEST_F(BaselinesTest, TfdvAutoMissesNumericAnomalies) {
  TfdvValidator auto_mode(BaselineMode::kAuto);
  auto_mode.Fit(clean_);
  // No inferred range/drift checks -> numeric anomalies invisible.
  EXPECT_FALSE(auto_mode.IsDirty(anomalies_));
  // But schema checks see typos (unseen categories) and missing values.
  EXPECT_TRUE(auto_mode.IsDirty(typos_));
  EXPECT_TRUE(auto_mode.IsDirty(missing_));
}

TEST_F(BaselinesTest, TfdvExpertCatchesOrdinaryMissesConflicts) {
  TfdvValidator expert(BaselineMode::kExpert);
  expert.Fit(clean_);
  EXPECT_TRUE(expert.IsDirty(anomalies_));
  EXPECT_TRUE(expert.IsDirty(typos_));
  EXPECT_TRUE(expert.IsDirty(missing_));
  EXPECT_FALSE(expert.IsDirty(conflict_));
}

TEST_F(BaselinesTest, TfdvExpertPassesClean) {
  TfdvValidator expert(BaselineMode::kExpert);
  expert.Fit(clean_);
  Rng rng(5);
  int flagged = 0;
  for (int i = 0; i < 10; ++i) {
    if (expert.IsDirty(SampleBatch(clean_, 300, rng))) ++flagged;
  }
  EXPECT_LE(flagged, 1);
}

// ---- ADQV ----------------------------------------------------------------------

TEST_F(BaselinesTest, AdqvDetectsStatisticShifts) {
  AdqvValidator adqv;
  adqv.Fit(clean_);
  EXPECT_TRUE(adqv.IsDirty(anomalies_));
  EXPECT_TRUE(adqv.IsDirty(missing_));
}

TEST_F(BaselinesTest, AdqvMostlyPassesClean) {
  AdqvValidator adqv;
  adqv.Fit(clean_);
  Rng rng(6);
  int flagged = 0;
  for (int i = 0; i < 20; ++i) {
    if (adqv.IsDirty(SampleBatch(clean_, 300, rng))) ++flagged;
  }
  EXPECT_LE(flagged, 5);
}

TEST_F(BaselinesTest, AdqvScoreIsExposed) {
  AdqvValidator adqv;
  adqv.Fit(clean_);
  adqv.IsDirty(anomalies_);
  EXPECT_GT(adqv.last_score(), adqv.threshold());
}

// ---- Gate ----------------------------------------------------------------------

TEST_F(BaselinesTest, GateFlagsGrossShifts) {
  GateValidator gate;
  gate.Fit(clean_);
  EXPECT_TRUE(gate.IsDirty(missing_));
  EXPECT_TRUE(gate.IsDirty(typos_));
}

TEST_F(BaselinesTest, GateViolationFractionExposed) {
  GateValidator gate;
  gate.Fit(clean_);
  gate.IsDirty(missing_);
  EXPECT_GT(gate.last_violation_fraction(), 0.0);
}

// ---- Cross-cutting ------------------------------------------------------------

TEST_F(BaselinesTest, AllValidatorsHaveNames) {
  DeequValidator da(BaselineMode::kAuto), de(BaselineMode::kExpert);
  TfdvValidator ta(BaselineMode::kAuto), te(BaselineMode::kExpert);
  AdqvValidator adqv;
  GateValidator gate;
  EXPECT_EQ(da.name(), "Deequ auto");
  EXPECT_EQ(de.name(), "Deequ expert");
  EXPECT_EQ(ta.name(), "TFDV auto");
  EXPECT_EQ(te.name(), "TFDV expert");
  EXPECT_EQ(adqv.name(), "ADQV");
  EXPECT_EQ(gate.name(), "Gate");
}

TEST_F(BaselinesTest, DeequViolationDiagnostics) {
  DeequValidator expert(BaselineMode::kExpert);
  expert.Fit(clean_);
  expert.IsDirty(anomalies_);
  EXPECT_FALSE(expert.last_violations().empty());
  bool mentions_income = false;
  for (const std::string& v : expert.last_violations()) {
    if (v.find("AMT_INCOME_TOTAL") != std::string::npos) {
      mentions_income = true;
    }
  }
  EXPECT_TRUE(mentions_income);
}

TEST_F(BaselinesTest, TfdvAnomalyDiagnostics) {
  TfdvValidator auto_mode(BaselineMode::kAuto);
  auto_mode.Fit(clean_);
  auto_mode.IsDirty(typos_);
  EXPECT_FALSE(auto_mode.last_anomalies().empty());
}

}  // namespace
}  // namespace dquag
