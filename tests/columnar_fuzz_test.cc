// Hostile-input fuzzing for every byte-level decoder the library exposes:
// the .dqc columnar reader, the incremental CSV tokenizer, and the schema /
// relationship JSON loaders. The contract under test is uniform — arbitrary
// bytes may NEVER abort, throw, overread, or allocate unbounded memory;
// corruption surfaces as an error Status. Runs under the same ASan CI job
// as the wire-codec fuzz in serve_test.cc and mirrors its seeded-garbage
// idiom (Rng(1234), 500 cases).
//
// Structured attacks go beyond random garbage: truncation at every prefix
// length, single-byte corruption at every offset, splices of two valid
// files, and hand-built footers with hostile counts/offsets that must be
// rejected BEFORE any allocation they imply.

#include <cstdint>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "data/columnar_format.h"
#include "data/columnar_reader.h"
#include "data/columnar_writer.h"
#include "data/generators.h"
#include "data/schema_json.h"
#include "data/table_chunk_reader.h"
#include "graph/relationship_json.h"
#include "util/binary_io.h"
#include "util/checksum.h"
#include "util/csv.h"
#include "util/rng.h"

namespace dquag {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + name;
}

void WriteBytesFile(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  ASSERT_TRUE(out.good()) << "cannot write " << path;
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "cannot read " << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

/// Feeds `bytes` to the columnar reader as a file. If Open accepts it,
/// drains every chunk and touches every (block, column) view — all decode
/// paths must either succeed or fail with Status; never crash.
void OpenAndDrain(const std::string& bytes, const std::string& path) {
  WriteBytesFile(path, bytes);
  auto reader = ColumnarReader::Open(path, {.chunk_rows = 13});
  if (!reader.ok()) return;  // clean rejection is the expected outcome
  ColumnarReader& r = **reader;
  Table chunk;
  for (;;) {
    auto got = r.Next(chunk);
    if (!got.ok() || *got == 0) break;
  }
  for (int64_t b = 0; b < r.num_blocks(); ++b) {
    for (int64_t c = 0; c < r.schema().num_columns(); ++c) {
      if (r.schema().column(c).type == ColumnType::kNumeric) {
        (void)r.NumericBlock(b, c);
      } else {
        (void)r.CategoricalBlock(b, c);
      }
    }
  }
}

/// A small but representative valid .dqc: mixed column types, missing
/// cells, several blocks, a ragged tail block.
std::string ValidDqcBytes(uint64_t seed, int64_t rows, int64_t block_rows,
                          const std::string& path) {
  Rng rng(seed);
  Table clean = datasets::GenerateGooglePlayClean(rows, rng);
  Rng dirt_rng(seed + 1);
  const Table dirty = datasets::CorruptGooglePlay(clean, dirt_rng);
  ColumnarWriterOptions options;
  options.block_rows = block_rows;
  EXPECT_TRUE(WriteColumnarFile(dirty, path, options).ok());
  return ReadFileBytes(path);
}

// ---- Columnar reader: structured attacks -----------------------------------

TEST(ColumnarFuzzTest, TruncateAtEveryPrefixFailsCleanly) {
  const std::string work = TempPath("trunc_work.dqc");
  const std::string valid = ValidDqcBytes(51, 30, 8, TempPath("trunc.dqc"));
  ASSERT_GT(valid.size(), 100u);
  for (size_t len = 0; len < valid.size(); ++len) {
    WriteBytesFile(work, valid.substr(0, len));
    auto reader = ColumnarReader::Open(work);
    // The footer checksum lives in the tail; no strict prefix carries a
    // valid tail, so every truncation must be rejected at Open.
    EXPECT_FALSE(reader.ok()) << "prefix of " << len << " bytes accepted";
  }
}

TEST(ColumnarFuzzTest, SingleByteCorruptionAtEveryOffsetNeverCrashes) {
  const std::string work = TempPath("flip_work.dqc");
  const std::string valid = ValidDqcBytes(52, 30, 8, TempPath("flip.dqc"));
  for (size_t pos = 0; pos < valid.size(); ++pos) {
    std::string mutated = valid;
    mutated[pos] = static_cast<char>(mutated[pos] ^ 0xff);
    OpenAndDrain(mutated, work);
  }
}

TEST(ColumnarFuzzTest, PayloadCorruptionIsDetectedByChecksum) {
  const std::string path = TempPath("detect.dqc");
  std::string bytes = ValidDqcBytes(53, 30, 8, path);
  // Offset 16 sits inside the first block's first payload (the data region
  // starts at the 8-byte header, payloads are 8-byte aligned).
  bytes[16] = static_cast<char>(bytes[16] ^ 0x01);
  WriteBytesFile(path, bytes);
  auto reader = ColumnarReader::Open(path);
  // The footer is intact, so Open succeeds — but the first touch of the
  // corrupted payload must fail its checksum.
  ASSERT_TRUE(reader.ok()) << reader.status().ToString();
  Table chunk;
  auto got = (*reader)->Next(chunk);
  ASSERT_FALSE(got.ok());
  EXPECT_NE(got.status().ToString().find("checksum"), std::string::npos);
}

TEST(ColumnarFuzzTest, SplicesOfValidFilesNeverCrash) {
  const std::string work = TempPath("splice_work.dqc");
  const std::string a = ValidDqcBytes(54, 30, 8, TempPath("splice_a.dqc"));
  const std::string b = ValidDqcBytes(55, 24, 5, TempPath("splice_b.dqc"));
  Rng rng(1234);
  for (int iteration = 0; iteration < 200; ++iteration) {
    const size_t cut_a = static_cast<size_t>(
        rng.UniformInt(0, static_cast<int64_t>(a.size())));
    const size_t cut_b = static_cast<size_t>(
        rng.UniformInt(0, static_cast<int64_t>(b.size())));
    // Head of one file, tail of the other: headers, payloads, and footers
    // all disagree about offsets and checksums.
    OpenAndDrain(a.substr(0, cut_a) + b.substr(cut_b), work);
    OpenAndDrain(b.substr(0, cut_b) + a.substr(cut_a), work);
  }
}

TEST(ColumnarFuzzTest, GarbageFuzzNeverCrashes) {
  const std::string work = TempPath("garbage_work.dqc");
  Rng rng(1234);
  for (int iteration = 0; iteration < 500; ++iteration) {
    const int64_t size = rng.UniformInt(0, 300);
    std::string garbage(static_cast<size_t>(size), '\0');
    for (char& c : garbage) {
      c = static_cast<char>(rng.UniformInt(0, 255));
    }
    OpenAndDrain(garbage, work);
  }
}

/// Wraps `footer` in a structurally valid file: header, the footer bytes,
/// and a tail whose offset/size/checksum are all correct — so Open's outer
/// checks pass and ParseFooter faces the hostile content directly.
std::string FileWithFooter(const std::string& footer) {
  std::string file;
  const uint32_t header[2] = {columnar::kMagic, columnar::kVersion};
  file.append(reinterpret_cast<const char*>(header), 8);
  const uint64_t footer_offset = file.size();
  file += footer;
  const uint64_t tail[4] = {footer_offset, footer.size(),
                            Fnv1a64(footer.data(), footer.size()),
                            columnar::kTailMagic};
  file.append(reinterpret_cast<const char*>(tail), 32);
  return file;
}

std::string TinySchemaJson() {
  return SchemaToJson(Schema({{"x", ColumnType::kNumeric, ""},
                              {"label", ColumnType::kCategorical, ""}}));
}

TEST(ColumnarFuzzTest, HostileFooterCountsAreRejectedBeforeAllocation) {
  const std::string work = TempPath("hostile_footer.dqc");

  // A dictionary claiming 2^60 entries: rejected against the remaining
  // footer bytes, never reserved.
  {
    BinaryWriter f;
    f.WriteString(TinySchemaJson());
    f.WriteU64(10);  // num_rows
    f.WriteU64(4);   // block_rows
    f.WriteU64(3);   // num_blocks
    f.WriteU64(columnar::kTypeNumeric);
    f.WriteU64(columnar::kTypeCategorical);
    f.WriteU64(uint64_t{1} << 60);  // dict_size
    WriteBytesFile(work, FileWithFooter(f.buffer()));
    auto reader = ColumnarReader::Open(work);
    ASSERT_FALSE(reader.ok());
    EXPECT_NE(reader.status().ToString().find("dictionary"),
              std::string::npos);
  }

  // 2^40 blocks, arithmetically consistent with num_rows: rejected against
  // the footer's actual size before blocks_ is reserved.
  {
    BinaryWriter f;
    f.WriteString(TinySchemaJson());
    f.WriteU64(uint64_t{1} << 40);  // num_rows
    f.WriteU64(1);                  // block_rows
    f.WriteU64(uint64_t{1} << 40);  // num_blocks
    f.WriteU64(columnar::kTypeNumeric);
    f.WriteU64(columnar::kTypeCategorical);
    f.WriteU64(0);  // empty dictionary
    WriteBytesFile(work, FileWithFooter(f.buffer()));
    EXPECT_FALSE(ColumnarReader::Open(work).ok());
  }

  // A payload whose offset points past the data region.
  {
    BinaryWriter f;
    f.WriteString(TinySchemaJson());
    f.WriteU64(2);  // num_rows
    f.WriteU64(4);  // block_rows
    f.WriteU64(1);  // num_blocks
    f.WriteU64(columnar::kTypeNumeric);
    f.WriteU64(columnar::kTypeCategorical);
    f.WriteU64(0);  // empty dictionary
    f.WriteU64(2);  // block rows
    for (int c = 0; c < 2; ++c) {
      f.WriteU64(uint64_t{1} << 50);  // offset far out of bounds
      f.WriteU64(c == 0 ? columnar::NumericPayloadBytes(2)
                        : columnar::CategoricalPayloadBytes(2));
      f.WriteU64(0);  // checksum (never reached)
    }
    WriteBytesFile(work, FileWithFooter(f.buffer()));
    auto reader = ColumnarReader::Open(work);
    ASSERT_FALSE(reader.ok());
    EXPECT_NE(reader.status().ToString().find("out of bounds"),
              std::string::npos);
  }

  // Deeply nested schema JSON: the parser's depth limit must kick in long
  // before the recursion can exhaust the stack.
  {
    std::string deep(20000, '[');
    BinaryWriter f;
    f.WriteString(deep);
    WriteBytesFile(work, FileWithFooter(f.buffer()));
    EXPECT_FALSE(ColumnarReader::Open(work).ok());
  }
}

// ---- CSV stream parser -----------------------------------------------------

TEST(CsvFuzzTest, StreamParserGarbageNeverCrashes) {
  Rng rng(1234);
  for (int iteration = 0; iteration < 500; ++iteration) {
    const int64_t size = rng.UniformInt(0, 300);
    std::string garbage(static_cast<size_t>(size), '\0');
    for (char& c : garbage) {
      // Bias toward CSV metacharacters so quote/newline state machines get
      // exercised, not just rejected printable noise.
      const int64_t pick = rng.UniformInt(0, 9);
      if (pick < 4) {
        c = "\",\n\r"[static_cast<size_t>(rng.UniformInt(0, 3))];
      } else {
        c = static_cast<char>(rng.UniformInt(0, 255));
      }
    }
    CsvStreamParser parser;
    std::vector<std::vector<std::string>> records;
    // Feed in random-sized blocks: quoted fields must survive arbitrary
    // split points.
    size_t cursor = 0;
    bool failed = false;
    while (cursor < garbage.size()) {
      const size_t take = static_cast<size_t>(rng.UniformInt(
          1, static_cast<int64_t>(garbage.size() - cursor)));
      if (!parser.Consume(garbage.data() + cursor, take, &records).ok()) {
        failed = true;
        break;
      }
      cursor += take;
    }
    if (!failed) (void)parser.Finish(&records);
  }
}

TEST(CsvFuzzTest, ChunkReaderOverGarbageFilesNeverCrashes) {
  const std::string work = TempPath("garbage.csv");
  const Schema schema({{"x", ColumnType::kNumeric, ""},
                       {"label", ColumnType::kCategorical, ""}});
  Rng rng(4321);
  for (int iteration = 0; iteration < 100; ++iteration) {
    const int64_t size = rng.UniformInt(0, 400);
    std::string garbage(static_cast<size_t>(size), '\0');
    for (char& c : garbage) {
      const int64_t pick = rng.UniformInt(0, 9);
      if (pick < 4) {
        c = "\",\nx"[static_cast<size_t>(rng.UniformInt(0, 3))];
      } else {
        c = static_cast<char>(rng.UniformInt(32, 126));
      }
    }
    WriteBytesFile(work, "x,label\n" + garbage);
    auto reader = CsvChunkReader::Open(work, schema, {.chunk_rows = 7});
    if (!reader.ok()) continue;
    Table chunk;
    for (;;) {
      auto got = (*reader)->Next(chunk);
      if (!got.ok() || *got == 0) break;
    }
  }
}

// ---- Schema / relationship JSON --------------------------------------------

TEST(JsonFuzzTest, SchemaFromGarbageNeverCrashes) {
  Rng rng(1234);
  for (int iteration = 0; iteration < 500; ++iteration) {
    const int64_t size = rng.UniformInt(0, 300);
    std::string garbage(static_cast<size_t>(size), '\0');
    for (char& c : garbage) {
      const int64_t pick = rng.UniformInt(0, 9);
      if (pick < 4) {
        c = "{}[]\":,"[static_cast<size_t>(rng.UniformInt(0, 6))];
      } else {
        c = static_cast<char>(rng.UniformInt(0, 255));
      }
    }
    (void)SchemaFromJson(garbage);
    (void)RelationshipsFromJson(garbage);
  }
}

TEST(JsonFuzzTest, SchemaTypeConfusionFailsWithStatus) {
  // Every hostile shape must produce an error Status — never a CHECK abort
  // from a mistyped accessor.
  const std::vector<std::string> hostile = {
      R"({"columns": [{"name": 5, "type": "numeric"}]})",
      R"({"columns": [{"name": "x", "type": true}]})",
      R"({"columns": [{"name": "x", "type": ["numeric"]}]})",
      R"({"columns": [{"name": "", "type": "numeric"}]})",
      R"({"columns": [{"name": "x", "type": "numeric"},
                      {"name": "x", "type": "numeric"}]})",
      R"({"columns": [{"name": "x", "type": "quaternion"}]})",
      R"({"columns": [{"name": "x", "type": "numeric",
                       "description": 7}]})",
      R"({"columns": [null]})",
      R"({"columns": {}})",
      R"({"columns": []})",
      R"({"columns": 3})",
      R"([1, 2, 3])",
      R"("just a string")",
  };
  for (const std::string& json : hostile) {
    auto schema = SchemaFromJson(json);
    EXPECT_FALSE(schema.ok()) << json;
  }
  std::string deep(20000, '[');
  EXPECT_FALSE(SchemaFromJson(deep).ok());
  EXPECT_FALSE(SchemaFromJson(std::string(20000, '{')).ok());
}

TEST(JsonFuzzTest, RelationshipTypeConfusionFailsWithStatus) {
  const std::vector<std::string> hostile = {
      R"({"relationships": [{"feature1": 1, "feature2": "b"}]})",
      R"({"relationships": [{"feature1": "a", "feature2": null}]})",
      R"({"relationships": [{"feature1": "a", "feature2": "b",
                             "score": "high"}]})",
      R"({"relationships": [{"feature1": "a", "feature2": "b",
                             "kind": 3}]})",
      R"({"relationships": [{"feature1": "a"}]})",
      R"({"relationships": [42]})",
      R"({"relationships": {}})",
      R"({"wrong_key": []})",
  };
  for (const std::string& json : hostile) {
    auto relationships = RelationshipsFromJson(json);
    EXPECT_FALSE(relationships.ok()) << json;
  }
  EXPECT_FALSE(RelationshipsFromJson(std::string(20000, '[')).ok());
}

}  // namespace
}  // namespace dquag
