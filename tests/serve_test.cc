// Unit tests for the serving subsystem's building blocks: the lock-free
// log-bucketed percentile counter, the wire codec (round-trips plus
// garbage/truncation fuzz — no malformed payload may do worse than return
// an error Status), and the multi-tenant model registry (lazy loads, LRU
// eviction under capacity pressure, duplicate-load suppression under a
// thundering herd, atomic hot-swap mid-traffic, bounded admission). The
// threaded cases run under the CI ThreadSanitizer job.

#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/pipeline.h"
#include "core/validation_service.h"
#include "data/generators.h"
#include "serve/model_registry.h"
#include "serve/percentile_counter.h"
#include "serve/wire.h"
#include "util/binary_io.h"
#include "util/rng.h"

namespace dquag {
namespace {

// ---------------------------------------------------------------- fixtures

/// Trains a tiny pipeline (fast settings) and saves it under TempDir.
/// Cached per seed: several tests share checkpoints without retraining.
std::string CheckpointForSeed(uint64_t seed) {
  static std::map<uint64_t, std::string>* cache =
      new std::map<uint64_t, std::string>();
  auto it = cache->find(seed);
  if (it != cache->end()) return it->second;
  Rng rng(seed);
  Table clean = datasets::GenerateNyTaxi(96, rng, /*dims=*/10);
  DquagPipelineOptions options;
  options.config.encoder.hidden_dim = 8;
  options.config.epochs = 1;
  options.config.batch_size = 64;
  options.config.seed = seed;
  DquagPipeline pipeline(std::move(options));
  EXPECT_TRUE(pipeline.Fit(clean).ok());
  const std::string path = ::testing::TempDir() + "serve_test_ckpt_" +
                           std::to_string(seed) + ".bin";
  EXPECT_TRUE(pipeline.Save(path).ok());
  (*cache)[seed] = path;
  return path;
}

Table FreshBatch(uint64_t seed, int64_t rows = 32) {
  Rng rng(seed);
  return datasets::GenerateNyTaxi(rows, rng, /*dims=*/10);
}

// ------------------------------------------------------- PercentileCounter

TEST(PercentileCounterTest, SingleValueIsExactBelowSubBucketRange) {
  for (uint64_t v : {0ull, 1ull, 7ull, 31ull}) {
    PercentileCounter counter;
    counter.Record(v);
    EXPECT_EQ(counter.Percentile(0.5), v);
    EXPECT_EQ(counter.Percentile(0.999), v);
    EXPECT_EQ(counter.max(), v);
    EXPECT_EQ(counter.count(), 1);
  }
}

TEST(PercentileCounterTest, BucketIndexInverseBoundsValue) {
  for (uint64_t v : {uint64_t{0}, uint64_t{31}, uint64_t{32}, uint64_t{33},
                     uint64_t{100}, uint64_t{1000}, uint64_t{4095},
                     uint64_t{65537}, uint64_t{1000000},
                     PercentileCounter::kMaxValue}) {
    const uint64_t index = PercentileCounter::BucketIndex(v);
    ASSERT_LT(index, PercentileCounter::kNumBuckets);
    const uint64_t upper = PercentileCounter::UpperBound(index);
    EXPECT_GE(upper, v);
    // Upper bound overshoots by at most one sub-bucket (~1/32 relative).
    EXPECT_LE(static_cast<double>(upper),
              static_cast<double>(v) * (1.0 + 1.0 / 32.0) + 1.0);
    EXPECT_EQ(PercentileCounter::BucketIndex(upper), index);
  }
}

TEST(PercentileCounterTest, PercentilesAreMonotonic) {
  PercentileCounter counter;
  Rng rng(5);
  for (int i = 0; i < 5000; ++i) {
    counter.Record(static_cast<uint64_t>(rng.UniformInt(0, 2000000)));
  }
  const uint64_t p50 = counter.Percentile(0.50);
  const uint64_t p99 = counter.Percentile(0.99);
  const uint64_t p999 = counter.Percentile(0.999);
  EXPECT_LE(p50, p99);
  EXPECT_LE(p99, p999);
  EXPECT_LE(p999, counter.max() + counter.max() / 32 + 1);
  EXPECT_EQ(counter.count(), 5000);
}

TEST(PercentileCounterTest, OversizedSamplesClampIntoTopBucket) {
  PercentileCounter counter;
  counter.Record(~0ull);
  EXPECT_EQ(counter.count(), 1);
  EXPECT_EQ(counter.max(), PercentileCounter::kMaxValue);
  EXPECT_GE(counter.Percentile(0.5), PercentileCounter::kMaxValue / 2);
}

TEST(PercentileCounterTest, ConcurrentRecordersLoseNothing) {
  PercentileCounter counter;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter, t] {
      for (int i = 0; i < kPerThread; ++i) {
        counter.Record(static_cast<uint64_t>(t * 1000 + i % 977));
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(counter.count(), kThreads * kPerThread);
  EXPECT_GT(counter.Percentile(0.5), 0u);
}

// ------------------------------------------------------------------- wire

TEST(WireCodecTest, RequestRoundTrip) {
  WireRequest request;
  request.verb = WireVerb::kValidate;
  request.request_id = 77;
  request.tenant = "acme/eu-west";
  request.body = "a,b\n1,2\n";
  auto decoded = DecodeRequest(EncodeRequest(request));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->verb, WireVerb::kValidate);
  EXPECT_EQ(decoded->request_id, 77u);
  EXPECT_EQ(decoded->tenant, "acme/eu-west");
  EXPECT_EQ(decoded->body, "a,b\n1,2\n");
}

TEST(WireCodecTest, VerdictRoundTripIsBitExact) {
  WireVerdict verdict;
  verdict.total_rows = 1000;
  verdict.flagged_fraction = 0.123456789012345678;  // exercises full bits
  verdict.threshold = 3.9e-7;
  verdict.is_dirty = true;
  verdict.flagged.push_back({12, 0.5000000000000001, {0, 3}});
  verdict.flagged.push_back({999, 1e-300, {}});
  auto decoded = DecodeVerdict(EncodeVerdict(verdict));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->total_rows, 1000);
  EXPECT_EQ(decoded->flagged_fraction, verdict.flagged_fraction);
  EXPECT_EQ(decoded->threshold, verdict.threshold);
  EXPECT_TRUE(decoded->is_dirty);
  ASSERT_EQ(decoded->flagged.size(), 2u);
  EXPECT_EQ(decoded->flagged[0].row, 12u);
  EXPECT_EQ(decoded->flagged[0].error, 0.5000000000000001);
  EXPECT_EQ(decoded->flagged[0].suspect_features,
            (std::vector<int64_t>{0, 3}));
  EXPECT_EQ(decoded->flagged[1].error, 1e-300);
}

TEST(WireCodecTest, RepairAndStatsRoundTrip) {
  WireRepair repair{"x,y\n1,2\n", 3, 2};
  auto repair_decoded = DecodeRepair(EncodeRepair(repair));
  ASSERT_TRUE(repair_decoded.ok());
  EXPECT_EQ(repair_decoded->repaired_csv, repair.repaired_csv);
  EXPECT_EQ(repair_decoded->cells_repaired, 3);
  EXPECT_EQ(repair_decoded->instances_repaired, 2);

  TenantStatsSnapshot snapshot;
  snapshot.tenant = "beta";
  snapshot.resident = true;
  snapshot.requests_ok = 5;
  snapshot.requests_rejected = 1;
  snapshot.rows_validated = 320;
  snapshot.latency = {5, 100, 900, 1500, 1600};
  auto stats_decoded = DecodeStats(EncodeStats({snapshot}));
  ASSERT_TRUE(stats_decoded.ok());
  ASSERT_EQ(stats_decoded->size(), 1u);
  EXPECT_EQ((*stats_decoded)[0].tenant, "beta");
  EXPECT_TRUE((*stats_decoded)[0].resident);
  EXPECT_EQ((*stats_decoded)[0].requests_rejected, 1);
  EXPECT_EQ((*stats_decoded)[0].latency.p999_us, 1500);
}

TEST(WireCodecTest, TruncationsAndTrailingBytesAreErrors) {
  WireRequest request;
  request.verb = WireVerb::kDeploy;
  request.tenant = "t";
  request.body = "/models/x.ckpt";
  const std::string encoded = EncodeRequest(request);
  for (size_t cut = 0; cut < encoded.size(); ++cut) {
    EXPECT_FALSE(DecodeRequest(encoded.substr(0, cut)).ok())
        << "prefix of length " << cut << " decoded";
  }
  EXPECT_FALSE(DecodeRequest(encoded + "x").ok());
  EXPECT_TRUE(DecodeRequest(encoded).ok());
}

TEST(WireCodecTest, GarbageFuzzNeverCrashes) {
  Rng rng(1234);
  for (int iteration = 0; iteration < 500; ++iteration) {
    const int64_t size = rng.UniformInt(0, 220);
    std::string garbage(static_cast<size_t>(size), '\0');
    for (char& c : garbage) {
      c = static_cast<char>(rng.UniformInt(0, 255));
    }
    // None of these may abort or throw; error Statuses are the contract.
    (void)DecodeRequest(garbage);
    (void)DecodeResponse(garbage);
    (void)DecodeVerdict(garbage);
    (void)DecodeRepair(garbage);
    (void)DecodeStats(garbage);
  }
}

TEST(WireCodecTest, HostileLengthPrefixFailsCleanly) {
  // A u64 string length of ~2^63 must be rejected before allocation.
  BinaryWriter w;
  w.WriteU64(kWireVersion);
  w.WriteU64(static_cast<uint64_t>(WireVerb::kPing));
  w.WriteU64(1);
  w.WriteU64(0x7fffffffffffffffull);  // tenant "length"
  auto decoded = DecodeRequest(w.buffer());
  EXPECT_FALSE(decoded.ok());
}

class FramePairTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds_), 0);
  }
  void TearDown() override {
    if (fds_[0] >= 0) ::close(fds_[0]);
    if (fds_[1] >= 0) ::close(fds_[1]);
  }
  int fds_[2] = {-1, -1};
};

TEST_F(FramePairTest, FrameRoundTrip) {
  const std::string payload = "hello frames \x01\x02\x00 with nuls";
  ASSERT_TRUE(WriteFrame(fds_[0], payload).ok());
  auto read = ReadFrame(fds_[1]);
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  EXPECT_EQ(*read, payload);
}

TEST_F(FramePairTest, BadMagicIsInvalidArgument) {
  const char garbage[8] = {'X', 'X', 'X', 'X', 0, 0, 0, 0};
  ASSERT_EQ(::send(fds_[0], garbage, sizeof(garbage), 0),
            static_cast<ssize_t>(sizeof(garbage)));
  auto read = ReadFrame(fds_[1]);
  ASSERT_FALSE(read.ok());
  EXPECT_EQ(read.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(FramePairTest, OversizeLengthIsRejected) {
  char header[8];
  const uint32_t magic = kFrameMagic;
  const uint32_t huge = kMaxFramePayload + 1;
  memcpy(header, &magic, 4);
  memcpy(header + 4, &huge, 4);
  ASSERT_EQ(::send(fds_[0], header, sizeof(header), 0), 8);
  auto read = ReadFrame(fds_[1]);
  ASSERT_FALSE(read.ok());
  EXPECT_EQ(read.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(FramePairTest, CleanEofIsUnavailableTornFrameIsIoError) {
  ::close(fds_[0]);
  fds_[0] = -1;
  auto read = ReadFrame(fds_[1]);
  ASSERT_FALSE(read.ok());
  EXPECT_EQ(read.status().code(), StatusCode::kUnavailable);

  int pair[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, pair), 0);
  char header[8];
  const uint32_t magic = kFrameMagic;
  const uint32_t length = 100;  // promise 100 bytes, deliver 3
  memcpy(header, &magic, 4);
  memcpy(header + 4, &length, 4);
  ASSERT_EQ(::send(pair[0], header, sizeof(header), 0), 8);
  ASSERT_EQ(::send(pair[0], "abc", 3, 0), 3);
  ::close(pair[0]);
  auto torn = ReadFrame(pair[1]);
  ASSERT_FALSE(torn.ok());
  EXPECT_EQ(torn.status().code(), StatusCode::kIoError);
  ::close(pair[1]);
}

// ----------------------------------------------------------- ModelRegistry

ModelRegistryOptions SmallRegistryOptions(int64_t max_resident = 4,
                                          int64_t max_inflight = 32) {
  ModelRegistryOptions options;
  options.max_resident = max_resident;
  options.max_inflight_per_tenant = max_inflight;
  options.service.micro_batch_rows = 16;
  return options;
}

TEST(ModelRegistryTest, DeployIsLazyAcquireLoadsOnce) {
  ModelRegistry registry(SmallRegistryOptions());
  ASSERT_TRUE(registry.Deploy("alpha", CheckpointForSeed(42)).ok());
  EXPECT_EQ(registry.resident_count(), 0);
  EXPECT_EQ(registry.load_count("alpha"), 0);

  auto service = registry.Acquire("alpha");
  ASSERT_TRUE(service.ok()) << service.status().ToString();
  EXPECT_EQ(registry.resident_count(), 1);
  EXPECT_EQ(registry.load_count("alpha"), 1);

  auto again = registry.Acquire("alpha");
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(service->get(), again->get());  // shared, not reloaded
  EXPECT_EQ(registry.load_count("alpha"), 1);
}

TEST(ModelRegistryTest, UnknownTenantIsNotFound) {
  ModelRegistry registry(SmallRegistryOptions());
  EXPECT_EQ(registry.Acquire("ghost").status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(registry.Admit("ghost").status().code(), StatusCode::kNotFound);
  EXPECT_FALSE(registry.Deploy("", "x").ok());
}

TEST(ModelRegistryTest, BadCheckpointFailsOnAcquireThenRecovers) {
  ModelRegistry registry(SmallRegistryOptions());
  ASSERT_TRUE(registry.Deploy("alpha", "/no/such/checkpoint.bin").ok());
  EXPECT_FALSE(registry.Acquire("alpha").ok());
  EXPECT_EQ(registry.resident_count(), 0);
  // Re-deploying a good path heals the tenant.
  ASSERT_TRUE(registry.Deploy("alpha", CheckpointForSeed(42)).ok());
  EXPECT_TRUE(registry.Acquire("alpha").ok());
}

TEST(ModelRegistryTest, LruEvictionUnderCapacityPressure) {
  ModelRegistry registry(SmallRegistryOptions(/*max_resident=*/2));
  const std::string path = CheckpointForSeed(42);
  for (const char* tenant : {"t1", "t2", "t3"}) {
    ASSERT_TRUE(registry.Deploy(tenant, path).ok());
  }
  ASSERT_TRUE(registry.Acquire("t1").ok());
  ASSERT_TRUE(registry.Acquire("t2").ok());
  EXPECT_EQ(registry.resident_count(), 2);

  // Loading t3 must evict t1 (least recently acquired).
  ASSERT_TRUE(registry.Acquire("t3").ok());
  EXPECT_EQ(registry.resident_count(), 2);
  ASSERT_TRUE(registry.Acquire("t2").ok());  // still resident: no reload
  EXPECT_EQ(registry.load_count("t2"), 1);

  // t1 was evicted: acquiring it reloads from disk and evicts t3 (LRU
  // after t2's touch above).
  ASSERT_TRUE(registry.Acquire("t1").ok());
  EXPECT_EQ(registry.load_count("t1"), 2);
  EXPECT_EQ(registry.resident_count(), 2);
  ASSERT_TRUE(registry.Acquire("t3").ok());
  EXPECT_EQ(registry.load_count("t3"), 2);

  int64_t evictions = 0;
  for (const TenantStatsSnapshot& snapshot : registry.StatsSnapshot()) {
    evictions += snapshot.evictions;
  }
  EXPECT_GE(evictions, 2);
}

TEST(ModelRegistryTest, EvictedServiceSurvivesForHolders) {
  ModelRegistry registry(SmallRegistryOptions(/*max_resident=*/1));
  ASSERT_TRUE(registry.Deploy("t1", CheckpointForSeed(42)).ok());
  ASSERT_TRUE(registry.Deploy("t2", CheckpointForSeed(42)).ok());
  auto held = registry.Acquire("t1");
  ASSERT_TRUE(held.ok());
  ASSERT_TRUE(registry.Acquire("t2").ok());  // evicts t1 from the registry
  EXPECT_EQ(registry.resident_count(), 1);
  // The held reference still serves requests; memory is reclaimed only
  // when the last holder lets go.
  Table batch = FreshBatch(7);
  auto verdict = (*held)->TryValidate(batch);
  EXPECT_TRUE(verdict.ok());
}

TEST(ModelRegistryTest, LazyLoadRaceLoadsExactlyOnce) {
  ModelRegistry registry(SmallRegistryOptions());
  ASSERT_TRUE(registry.Deploy("alpha", CheckpointForSeed(42)).ok());
  constexpr int kThreads = 8;
  std::atomic<int> failures{0};
  std::vector<const ValidationService*> seen(kThreads, nullptr);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      auto service = registry.Acquire("alpha");
      if (!service.ok()) {
        failures.fetch_add(1);
        return;
      }
      seen[static_cast<size_t>(t)] = service->get();
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(registry.load_count("alpha"), 1);  // the herd shared one load
  for (int t = 1; t < kThreads; ++t) {
    EXPECT_EQ(seen[static_cast<size_t>(t)], seen[0]);
  }
}

TEST(ModelRegistryTest, HotSwapMidTrafficDropsNoRequest) {
  ModelRegistry registry(SmallRegistryOptions());
  const std::string checkpoint_v1 = CheckpointForSeed(42);
  const std::string checkpoint_v2 = CheckpointForSeed(43);
  ASSERT_TRUE(registry.Deploy("alpha", checkpoint_v1).ok());
  ASSERT_TRUE(registry.Acquire("alpha").ok());

  Table batch = FreshBatch(11, /*rows=*/16);
  std::atomic<bool> stop{false};
  std::atomic<int64_t> requests{0};
  std::atomic<int64_t> failures{0};
  std::vector<std::thread> clients;
  for (int t = 0; t < 4; ++t) {
    clients.emplace_back([&] {
      while (!stop.load(std::memory_order_acquire)) {
        auto service = registry.Acquire("alpha");
        if (!service.ok()) {
          failures.fetch_add(1);
          continue;
        }
        auto verdict = (*service)->TryValidate(batch);
        if (!verdict.ok()) failures.fetch_add(1);
        requests.fetch_add(1);
      }
    });
  }
  // Swap back and forth while traffic flows; every Deploy loads the new
  // checkpoint before the pointer moves, so there is never a gap. Waiting
  // for fresh requests between swaps keeps the interleaving real even on a
  // single-core machine where the swapper could otherwise finish first.
  for (int swap = 0; swap < 6; ++swap) {
    const int64_t before = requests.load(std::memory_order_acquire);
    while (requests.load(std::memory_order_acquire) <= before) {
      std::this_thread::yield();
    }
    const std::string& next = (swap % 2 == 0) ? checkpoint_v2
                                              : checkpoint_v1;
    ASSERT_TRUE(registry.Deploy("alpha", next).ok());
  }
  stop.store(true, std::memory_order_release);
  for (auto& client : clients) client.join();

  EXPECT_EQ(failures.load(), 0);
  EXPECT_GT(requests.load(), 0);
  auto stats = registry.StatsSnapshot();
  ASSERT_EQ(stats.size(), 1u);
  EXPECT_EQ(stats[0].swaps, 6);
}

TEST(ModelRegistryTest, FailedHotSwapKeepsServingOldModel) {
  ModelRegistry registry(SmallRegistryOptions());
  ASSERT_TRUE(registry.Deploy("alpha", CheckpointForSeed(42)).ok());
  auto before = registry.Acquire("alpha");
  ASSERT_TRUE(before.ok());
  const double threshold = (*before)->pipeline().threshold();

  EXPECT_FALSE(registry.Deploy("alpha", "/no/such/v2.ckpt").ok());
  auto after = registry.Acquire("alpha");
  ASSERT_TRUE(after.ok());
  EXPECT_EQ((*after)->pipeline().threshold(), threshold);
  EXPECT_EQ(before->get(), after->get());  // same live instance
}

TEST(ModelRegistryTest, TruncatedCheckpointNeverSwapsInAtAnyLength) {
  ModelRegistry registry(SmallRegistryOptions());
  ASSERT_TRUE(registry.Deploy("alpha", CheckpointForSeed(42)).ok());
  auto before = registry.Acquire("alpha");
  ASSERT_TRUE(before.ok());

  // Re-deploy the SAME model torn at stepped prefix lengths — a crash can
  // truncate a checkpoint anywhere, including exactly at a section
  // boundary. Every length must fail the swap and leave the live instance
  // untouched; none may abort or install a half-decoded service.
  auto intact = BinaryReader::FromFile(CheckpointForSeed(42));
  ASSERT_TRUE(intact.ok());
  const std::string bytes = std::move(*intact).TakeBuffer();
  const std::string torn_path =
      ::testing::TempDir() + "serve_test_torn.ckpt";
  std::vector<size_t> lengths;
  const size_t step = std::max<size_t>(1, bytes.size() / 64);
  for (size_t len = 0; len < bytes.size(); len += step) {
    lengths.push_back(len);
  }
  lengths.push_back(bytes.size() - 1);  // torn by exactly one byte
  for (size_t len : lengths) {
    {
      std::ofstream out(torn_path, std::ios::binary | std::ios::trunc);
      out.write(bytes.data(), static_cast<std::streamsize>(len));
    }
    const Status swap = registry.Deploy("alpha", torn_path);
    EXPECT_FALSE(swap.ok()) << "torn prefix of " << len << " bytes loaded";
    auto still = registry.Acquire("alpha");
    ASSERT_TRUE(still.ok());
    EXPECT_EQ(before->get(), still->get()) << "len " << len;
  }

  // A fresh tenant lazily loading the torn file fails closed with
  // kUnavailable — the retryable "no servable model" contract.
  ASSERT_TRUE(registry.Deploy("beta", torn_path).ok());  // lazy: records path
  auto acquire = registry.Acquire("beta");
  ASSERT_FALSE(acquire.ok());
  EXPECT_EQ(acquire.status().code(), StatusCode::kUnavailable);

  // Re-deploying the intact bytes heals the fresh tenant.
  ASSERT_TRUE(registry.Deploy("beta", CheckpointForSeed(42)).ok());
  EXPECT_TRUE(registry.Acquire("beta").ok());
  std::remove(torn_path.c_str());
}

TEST(ModelRegistryTest, AdmissionBudgetRejectsGracefully) {
  ModelRegistry registry(
      SmallRegistryOptions(/*max_resident=*/4, /*max_inflight=*/2));
  ASSERT_TRUE(registry.Deploy("alpha", CheckpointForSeed(42)).ok());
  auto first = registry.Admit("alpha");
  ASSERT_TRUE(first.ok());
  auto second = registry.Admit("alpha");
  ASSERT_TRUE(second.ok());
  auto third = registry.Admit("alpha");
  ASSERT_FALSE(third.ok());
  EXPECT_EQ(third.status().code(), StatusCode::kResourceExhausted);
  // Releasing a ticket reopens the budget.
  *first = ModelRegistry::AdmitTicket();
  auto fourth = registry.Admit("alpha");
  EXPECT_TRUE(fourth.ok());
}

}  // namespace
}  // namespace dquag
