// Tests for the streaming QualityMonitor and the JSON schema loader.

#include <gtest/gtest.h>

#include <vector>

#include "core/monitor.h"
#include "core/streaming_validator.h"
#include "data/batch_sampler.h"
#include "data/error_injector.h"
#include "data/generators.h"
#include "data/schema_json.h"

namespace dquag {
namespace {

// ---- Schema JSON ---------------------------------------------------------------

TEST(SchemaJsonTest, ParseValid) {
  auto schema = SchemaFromJson(R"({
    "columns": [
      {"name": "age", "type": "numeric", "description": "age in years"},
      {"name": "city", "type": "categorical"}
    ]})");
  ASSERT_TRUE(schema.ok());
  EXPECT_EQ(schema->num_columns(), 2);
  EXPECT_EQ(schema->column(0).type, ColumnType::kNumeric);
  EXPECT_EQ(schema->column(0).description, "age in years");
  EXPECT_EQ(schema->column(1).type, ColumnType::kCategorical);
}

TEST(SchemaJsonTest, TypeAliases) {
  auto schema = SchemaFromJson(R"({
    "columns": [
      {"name": "a", "type": "int"},
      {"name": "b", "type": "float"},
      {"name": "c", "type": "string"},
      {"name": "d", "type": "category"}
    ]})");
  ASSERT_TRUE(schema.ok());
  EXPECT_EQ(schema->column(0).type, ColumnType::kNumeric);
  EXPECT_EQ(schema->column(1).type, ColumnType::kNumeric);
  EXPECT_EQ(schema->column(2).type, ColumnType::kCategorical);
  EXPECT_EQ(schema->column(3).type, ColumnType::kCategorical);
}

TEST(SchemaJsonTest, Malformed) {
  EXPECT_FALSE(SchemaFromJson("{}").ok());
  EXPECT_FALSE(SchemaFromJson(R"({"columns": []})").ok());
  EXPECT_FALSE(
      SchemaFromJson(R"({"columns": [{"name": "x"}]})").ok());
  EXPECT_FALSE(
      SchemaFromJson(R"({"columns": [{"name": "x", "type": "blob"}]})")
          .ok());
}

TEST(SchemaJsonTest, RoundTrip) {
  Schema original = datasets::CreditCardSchema();
  auto reparsed = SchemaFromJson(SchemaToJson(original));
  ASSERT_TRUE(reparsed.ok());
  EXPECT_TRUE(*reparsed == original);
  // Descriptions survive.
  EXPECT_EQ(reparsed->column(4).description,
            original.column(4).description);
}

TEST(SchemaJsonTest, FileRoundTrip) {
  const std::string path = "/tmp/dquag_schema_test.json";
  ASSERT_TRUE(SaveSchema(datasets::AirbnbSchema(), path).ok());
  auto loaded = LoadSchema(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_TRUE(*loaded == datasets::AirbnbSchema());
}

// ---- QualityMonitor --------------------------------------------------------------

class MonitorTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    Rng rng(66);
    clean_ = new Table(datasets::GenerateCreditCard(1500, rng));
    DquagPipelineOptions options;
    options.config.encoder.hidden_dim = 32;
    options.config.epochs = 8;
    options.config.seed = 66;
    options.config.batch_flag_multiplier = 1.5;
    pipeline_ = new DquagPipeline(std::move(options));
    ASSERT_TRUE(pipeline_->Fit(*clean_).ok());
  }
  static void TearDownTestSuite() {
    delete pipeline_;
    delete clean_;
  }
  static Table* clean_;
  static DquagPipeline* pipeline_;
};

Table* MonitorTest::clean_ = nullptr;
DquagPipeline* MonitorTest::pipeline_ = nullptr;

TEST_F(MonitorTest, CleanStreamStaysQuiet) {
  QualityMonitor monitor(pipeline_);
  Rng rng(1);
  for (int i = 0; i < 8; ++i) {
    monitor.Observe(SampleBatch(*clean_, 300, rng));
  }
  EXPECT_FALSE(monitor.alarming());
  EXPECT_EQ(monitor.history().size(), 8u);
  EXPECT_LT(monitor.DirtyBatchRate(), 0.3);
}

TEST_F(MonitorTest, SustainedDegradationRaisesAlarm) {
  QualityMonitor monitor(pipeline_);
  Rng rng(2);
  ErrorInjector injector(3);
  Table dirty =
      injector.InjectNumericAnomalies(*clean_, {"AMT_INCOME_TOTAL"}, 0.3)
          .table;
  // Warm up with clean batches, then degrade.
  for (int i = 0; i < 3; ++i) {
    monitor.Observe(SampleBatch(*clean_, 300, rng));
  }
  EXPECT_FALSE(monitor.alarming());
  for (int i = 0; i < 6; ++i) {
    monitor.Observe(SampleBatch(dirty, 300, rng));
  }
  EXPECT_TRUE(monitor.alarming());
  EXPECT_GT(monitor.DirtyBatchRate(), 0.4);
}

TEST_F(MonitorTest, EwmaSmoothesSingleSpike) {
  MonitorOptions options;
  options.ewma_alpha = 0.1;       // heavy smoothing: one spike cannot alarm
  options.alarm_multiplier = 2.0;  // alarm reserved for sustained shift
  options.warmup_rows = 600;
  QualityMonitor monitor(pipeline_, options);
  Rng rng(4);
  ErrorInjector injector(5);
  Table dirty =
      injector.InjectNumericAnomalies(*clean_, {"AMT_INCOME_TOTAL"}, 0.3)
          .table;
  for (int i = 0; i < 5; ++i) {
    monitor.Observe(SampleBatch(*clean_, 300, rng));
  }
  // One bad batch: single-batch verdict fires, EWMA alarm should not.
  MonitorObservation spike = monitor.Observe(SampleBatch(dirty, 300, rng));
  EXPECT_TRUE(spike.batch_dirty);
  EXPECT_FALSE(spike.alarm);
}

// Regression: history_ used to grow one entry per observation forever.
// 100k observations must stay within the ring capacity while every rolling
// aggregate remains exact.
TEST_F(MonitorTest, HistoryBoundedWithExactAggregates) {
  MonitorOptions options;
  options.history_capacity = 64;
  QualityMonitor monitor(pipeline_, options);

  BatchVerdict clean_verdict;
  clean_verdict.instances.resize(10);
  BatchVerdict dirty_verdict = clean_verdict;
  dirty_verdict.is_dirty = true;
  dirty_verdict.flagged_rows = {3};
  dirty_verdict.instances[3].flagged = true;
  dirty_verdict.flagged_fraction = 0.1;

  for (int i = 0; i < 100000; ++i) {
    monitor.ObserveVerdict(i % 4 == 0 ? dirty_verdict : clean_verdict);
  }
  EXPECT_EQ(monitor.history().size(), 64u);
  EXPECT_EQ(monitor.observation_count(), 100000);
  EXPECT_EQ(monitor.rows_observed(), 1000000);
  EXPECT_EQ(monitor.flagged_rows_observed(), 25000);
  EXPECT_DOUBLE_EQ(monitor.DirtyBatchRate(), 0.25);
  // batch_index keeps counting past the trim.
  EXPECT_EQ(monitor.history().back().batch_index, 99999);
  EXPECT_EQ(monitor.history().front().batch_index, 100000 - 64);
}

// Regression: a streamed verdict used to fold in as ONE batch-weighted
// observation regardless of row count. The monitor state must now be
// bit-identical whether the same rows arrive as N chunk verdicts or as a
// single stream verdict.
TEST_F(MonitorTest, ChunkedObservationsMatchOneStream) {
  std::vector<size_t> flagged;
  for (size_t r = 7; r < 1200; r += 53) flagged.push_back(r);

  QualityMonitor chunked(pipeline_);
  for (size_t chunk = 0; chunk < 12; ++chunk) {
    BatchVerdict verdict;
    verdict.instances.resize(100);
    for (size_t r : flagged) {
      if (r >= chunk * 100 && r < (chunk + 1) * 100) {
        verdict.flagged_rows.push_back(r - chunk * 100);
        verdict.instances[r - chunk * 100].flagged = true;
      }
    }
    chunked.ObserveVerdict(verdict);
  }

  QualityMonitor whole(pipeline_);
  StreamVerdict stream;
  stream.total_rows = 1200;
  stream.flagged_rows = flagged;
  stream.flagged_instances.resize(flagged.size());
  whole.ObserveStreamVerdict(stream);

  EXPECT_EQ(chunked.smoothed_fraction(), whole.smoothed_fraction());
  EXPECT_EQ(chunked.rows_observed(), whole.rows_observed());
  EXPECT_EQ(chunked.flagged_rows_observed(),
            whole.flagged_rows_observed());
  EXPECT_EQ(chunked.alarming(), whole.alarming());
  EXPECT_EQ(chunked.WindowColumnRates(), whole.WindowColumnRates());
}

// A million-row stream must move the EWMA like a million rows, not like
// one small batch: after a heavily-flagged long stream the smoothed rate
// tracks the stream's flag rate, which the old one-observation fold could
// never reach.
TEST_F(MonitorTest, StreamObservationIsRowWeighted) {
  QualityMonitor monitor(pipeline_);
  StreamVerdict stream;
  stream.total_rows = 100000;
  for (size_t r = 0; r < 100000; r += 2) stream.flagged_rows.push_back(r);
  stream.flagged_instances.resize(stream.flagged_rows.size());
  stream.flagged_fraction = 0.5;
  stream.is_dirty = true;
  MonitorObservation observation = monitor.ObserveStreamVerdict(stream);
  EXPECT_EQ(observation.rows, 100000);
  EXPECT_NEAR(observation.smoothed_fraction, 0.5, 0.05);
  EXPECT_TRUE(observation.alarm);
}

// Per-column drift: sustained suspect activity on one column beyond its
// training-profile baseline flags exactly that column, and the trailing
// window lets the verdict clear once the stream is clean again.
TEST_F(MonitorTest, PerColumnDriftDetectsAndClears) {
  MonitorOptions options;
  options.warmup_rows = 200;
  options.drift_window_rows = 1000;
  options.column_drift_threshold = 0.05;
  QualityMonitor monitor(pipeline_, options);

  BatchVerdict drifting;
  drifting.instances.resize(100);
  for (size_t r = 0; r < 100; r += 5) {
    drifting.flagged_rows.push_back(r);
    drifting.instances[r].flagged = true;
    drifting.instances[r].suspect_features = {2};
  }
  MonitorObservation last;
  for (int i = 0; i < 10; ++i) last = monitor.ObserveVerdict(drifting);
  ASSERT_TRUE(last.column_drift());
  EXPECT_EQ(last.drifting_columns, (std::vector<int64_t>{2}));
  EXPECT_EQ(monitor.drifting_columns(), (std::vector<int64_t>{2}));
  EXPECT_GT(monitor.WindowColumnRates()[2], 0.15);

  // A clean stretch longer than the window flushes the drift records.
  BatchVerdict clean_verdict;
  clean_verdict.instances.resize(100);
  for (int i = 0; i < 12; ++i) last = monitor.ObserveVerdict(clean_verdict);
  EXPECT_FALSE(last.column_drift());
  EXPECT_DOUBLE_EQ(monitor.WindowColumnRates()[2], 0.0);
}

TEST_F(MonitorTest, ResetClearsState) {
  QualityMonitor monitor(pipeline_);
  Rng rng(6);
  monitor.Observe(SampleBatch(*clean_, 200, rng));
  EXPECT_EQ(monitor.history().size(), 1u);
  monitor.Reset();
  EXPECT_EQ(monitor.history().size(), 0u);
  EXPECT_FALSE(monitor.alarming());
  EXPECT_DOUBLE_EQ(monitor.DirtyBatchRate(), 0.0);
}

}  // namespace
}  // namespace dquag
