// Tests for the streaming QualityMonitor and the JSON schema loader.

#include <gtest/gtest.h>

#include "core/monitor.h"
#include "data/batch_sampler.h"
#include "data/error_injector.h"
#include "data/generators.h"
#include "data/schema_json.h"

namespace dquag {
namespace {

// ---- Schema JSON ---------------------------------------------------------------

TEST(SchemaJsonTest, ParseValid) {
  auto schema = SchemaFromJson(R"({
    "columns": [
      {"name": "age", "type": "numeric", "description": "age in years"},
      {"name": "city", "type": "categorical"}
    ]})");
  ASSERT_TRUE(schema.ok());
  EXPECT_EQ(schema->num_columns(), 2);
  EXPECT_EQ(schema->column(0).type, ColumnType::kNumeric);
  EXPECT_EQ(schema->column(0).description, "age in years");
  EXPECT_EQ(schema->column(1).type, ColumnType::kCategorical);
}

TEST(SchemaJsonTest, TypeAliases) {
  auto schema = SchemaFromJson(R"({
    "columns": [
      {"name": "a", "type": "int"},
      {"name": "b", "type": "float"},
      {"name": "c", "type": "string"},
      {"name": "d", "type": "category"}
    ]})");
  ASSERT_TRUE(schema.ok());
  EXPECT_EQ(schema->column(0).type, ColumnType::kNumeric);
  EXPECT_EQ(schema->column(1).type, ColumnType::kNumeric);
  EXPECT_EQ(schema->column(2).type, ColumnType::kCategorical);
  EXPECT_EQ(schema->column(3).type, ColumnType::kCategorical);
}

TEST(SchemaJsonTest, Malformed) {
  EXPECT_FALSE(SchemaFromJson("{}").ok());
  EXPECT_FALSE(SchemaFromJson(R"({"columns": []})").ok());
  EXPECT_FALSE(
      SchemaFromJson(R"({"columns": [{"name": "x"}]})").ok());
  EXPECT_FALSE(
      SchemaFromJson(R"({"columns": [{"name": "x", "type": "blob"}]})")
          .ok());
}

TEST(SchemaJsonTest, RoundTrip) {
  Schema original = datasets::CreditCardSchema();
  auto reparsed = SchemaFromJson(SchemaToJson(original));
  ASSERT_TRUE(reparsed.ok());
  EXPECT_TRUE(*reparsed == original);
  // Descriptions survive.
  EXPECT_EQ(reparsed->column(4).description,
            original.column(4).description);
}

TEST(SchemaJsonTest, FileRoundTrip) {
  const std::string path = "/tmp/dquag_schema_test.json";
  ASSERT_TRUE(SaveSchema(datasets::AirbnbSchema(), path).ok());
  auto loaded = LoadSchema(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_TRUE(*loaded == datasets::AirbnbSchema());
}

// ---- QualityMonitor --------------------------------------------------------------

class MonitorTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    Rng rng(66);
    clean_ = new Table(datasets::GenerateCreditCard(1500, rng));
    DquagPipelineOptions options;
    options.config.encoder.hidden_dim = 32;
    options.config.epochs = 8;
    options.config.seed = 66;
    options.config.batch_flag_multiplier = 1.5;
    pipeline_ = new DquagPipeline(std::move(options));
    ASSERT_TRUE(pipeline_->Fit(*clean_).ok());
  }
  static void TearDownTestSuite() {
    delete pipeline_;
    delete clean_;
  }
  static Table* clean_;
  static DquagPipeline* pipeline_;
};

Table* MonitorTest::clean_ = nullptr;
DquagPipeline* MonitorTest::pipeline_ = nullptr;

TEST_F(MonitorTest, CleanStreamStaysQuiet) {
  QualityMonitor monitor(pipeline_);
  Rng rng(1);
  for (int i = 0; i < 8; ++i) {
    monitor.Observe(SampleBatch(*clean_, 300, rng));
  }
  EXPECT_FALSE(monitor.alarming());
  EXPECT_EQ(monitor.history().size(), 8u);
  EXPECT_LT(monitor.DirtyBatchRate(), 0.3);
}

TEST_F(MonitorTest, SustainedDegradationRaisesAlarm) {
  QualityMonitor monitor(pipeline_);
  Rng rng(2);
  ErrorInjector injector(3);
  Table dirty =
      injector.InjectNumericAnomalies(*clean_, {"AMT_INCOME_TOTAL"}, 0.3)
          .table;
  // Warm up with clean batches, then degrade.
  for (int i = 0; i < 3; ++i) {
    monitor.Observe(SampleBatch(*clean_, 300, rng));
  }
  EXPECT_FALSE(monitor.alarming());
  for (int i = 0; i < 6; ++i) {
    monitor.Observe(SampleBatch(dirty, 300, rng));
  }
  EXPECT_TRUE(monitor.alarming());
  EXPECT_GT(monitor.DirtyBatchRate(), 0.4);
}

TEST_F(MonitorTest, EwmaSmoothesSingleSpike) {
  MonitorOptions options;
  options.ewma_alpha = 0.1;       // heavy smoothing: one spike cannot alarm
  options.alarm_multiplier = 2.0;  // alarm reserved for sustained shift
  options.warmup_batches = 2;
  QualityMonitor monitor(pipeline_, options);
  Rng rng(4);
  ErrorInjector injector(5);
  Table dirty =
      injector.InjectNumericAnomalies(*clean_, {"AMT_INCOME_TOTAL"}, 0.3)
          .table;
  for (int i = 0; i < 5; ++i) {
    monitor.Observe(SampleBatch(*clean_, 300, rng));
  }
  // One bad batch: single-batch verdict fires, EWMA alarm should not.
  MonitorObservation spike = monitor.Observe(SampleBatch(dirty, 300, rng));
  EXPECT_TRUE(spike.batch_dirty);
  EXPECT_FALSE(spike.alarm);
}

TEST_F(MonitorTest, ResetClearsState) {
  QualityMonitor monitor(pipeline_);
  Rng rng(6);
  monitor.Observe(SampleBatch(*clean_, 200, rng));
  EXPECT_EQ(monitor.history().size(), 1u);
  monitor.Reset();
  EXPECT_EQ(monitor.history().size(), 0u);
  EXPECT_FALSE(monitor.alarming());
  EXPECT_DOUBLE_EQ(monitor.DirtyBatchRate(), 0.0);
}

}  // namespace
}  // namespace dquag
