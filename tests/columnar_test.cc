// Tests for the DQuaG columnar file format (.dqc): golden-file pinning of
// the writer's byte output, CSV <-> columnar round-trip bit-identity across
// chunkings and both readers, zero-copy view semantics, out-of-core
// training bit-identity (ColumnarTrainingSource vs the in-memory Tensor
// path), streaming-validation parity over .dqc files, and the CSV/table
// edge cases the format has to survive (empty files, header-only files,
// all-null columns, >255-entry dictionaries).
//
// Golden files live in tests/golden/*.dqc. The writer is deterministic
// byte-for-byte for a given row stream, so a golden mismatch means the file
// format changed — which silently invalidates every .dqc in the wild. To
// intentionally regenerate after a deliberate format bump:
//
//   DQUAG_UPDATE_GOLDENS=1 ./columnar_test

#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <functional>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/columnar_train_source.h"
#include "core/pipeline.h"
#include "core/streaming_validator.h"
#include "core/trainer.h"
#include "data/columnar_format.h"
#include "data/columnar_reader.h"
#include "data/columnar_writer.h"
#include "data/error_injector.h"
#include "data/generators.h"
#include "data/preprocessor.h"
#include "data/table_chunk_reader.h"
#include "util/csv.h"
#include "util/thread_pool.h"

namespace dquag {
namespace {

bool UpdateGoldens() {
  const char* value = std::getenv("DQUAG_UPDATE_GOLDENS");
  return value != nullptr && *value != '\0' && *value != '0';
}

std::string GoldenPath(const std::string& name) {
  return std::string(DQUAG_GOLDEN_DIR) + "/" + name;
}

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + name;
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "cannot read " << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

/// Writes `table` as .dqc (3 blocks at 48 rows) and compares the raw file
/// bytes against the checked-in golden.
void ExpectMatchesDqcGolden(const Table& table, const std::string& name) {
  const std::string path = TempPath(name);
  ColumnarWriterOptions options;
  options.block_rows = 16;  // 48 golden rows -> 3 full blocks
  ASSERT_TRUE(WriteColumnarFile(table, path, options).ok());
  const std::string actual = ReadFileBytes(path);
  const std::string golden = GoldenPath(name);
  if (UpdateGoldens()) {
    std::ofstream out(golden, std::ios::binary);
    ASSERT_TRUE(out.good()) << "cannot write " << golden;
    out << actual;
    return;
  }
  std::ifstream in(golden, std::ios::binary);
  ASSERT_TRUE(in.good()) << "missing golden file " << golden
                         << " — run with DQUAG_UPDATE_GOLDENS=1";
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string expected = buffer.str();
  ASSERT_EQ(actual.size(), expected.size())
      << name << " changed size — the .dqc layout changed; if intentional, "
      << "bump columnar::kVersion and regenerate with DQUAG_UPDATE_GOLDENS=1";
  EXPECT_TRUE(actual == expected)
      << name << " is no longer byte-identical — the .dqc encoding changed; "
      << "if intentional, bump columnar::kVersion and regenerate with "
      << "DQUAG_UPDATE_GOLDENS=1";
}

/// Strict bitwise table equality: schemas, row counts, every categorical
/// string, and the exact bit pattern of every numeric cell (canonical NaN
/// for missing, so missing == missing holds under bit comparison).
void ExpectTablesBitIdentical(const Table& a, const Table& b) {
  ASSERT_TRUE(a.schema() == b.schema());
  ASSERT_EQ(a.num_rows(), b.num_rows());
  for (int64_t c = 0; c < a.num_columns(); ++c) {
    if (a.schema().column(c).type == ColumnType::kNumeric) {
      const std::vector<double>& av = a.Numeric(c);
      const std::vector<double>& bv = b.Numeric(c);
      ASSERT_EQ(av.size(), bv.size());
      for (size_t r = 0; r < av.size(); ++r) {
        uint64_t ab, bb;
        std::memcpy(&ab, &av[r], 8);
        std::memcpy(&bb, &bv[r], 8);
        EXPECT_EQ(ab, bb) << "column " << a.schema().column(c).name
                          << " row " << r << ": " << av[r] << " vs "
                          << bv[r];
      }
    } else {
      EXPECT_EQ(a.Categorical(c), b.Categorical(c))
          << "column " << a.schema().column(c).name;
    }
  }
}

/// Drains any chunk reader into one materialized table.
Table DrainReader(TableChunkReader& reader) {
  Table out(reader.schema());
  Table chunk;
  for (;;) {
    auto got = reader.Next(chunk);
    EXPECT_TRUE(got.ok()) << got.status().ToString();
    if (!got.ok() || *got == 0) break;
    out.AppendRows(chunk);
  }
  return out;
}

// ---- Golden files: the writer's bytes are pinned ---------------------------

TEST(ColumnarGoldenTest, HotelBooking) {
  Rng rng(101);
  ExpectMatchesDqcGolden(datasets::GenerateHotelBooking(48, rng),
                         "hotel_booking_seed101_48.dqc");
}

TEST(ColumnarGoldenTest, CreditCard) {
  Rng rng(102);
  ExpectMatchesDqcGolden(datasets::GenerateCreditCard(48, rng),
                         "credit_card_seed102_48.dqc");
}

TEST(ColumnarGoldenTest, NyTaxi) {
  Rng rng(103);
  ExpectMatchesDqcGolden(datasets::GenerateNyTaxi(48, rng),
                         "ny_taxi_seed103_48.dqc");
}

TEST(ColumnarGoldenTest, AirbnbCleanAndDirty) {
  Rng rng(104);
  const Table clean = datasets::GenerateAirbnbClean(48, rng);
  ExpectMatchesDqcGolden(clean, "airbnb_clean_seed104_48.dqc");
  Rng dirt_rng(1104);
  ExpectMatchesDqcGolden(datasets::CorruptAirbnb(clean, dirt_rng),
                         "airbnb_dirty_seed1104_48.dqc");
}

TEST(ColumnarGoldenTest, BicycleCleanAndDirty) {
  Rng rng(105);
  const Table clean = datasets::GenerateBicycleClean(48, rng);
  ExpectMatchesDqcGolden(clean, "bicycle_clean_seed105_48.dqc");
  Rng dirt_rng(1105);
  ExpectMatchesDqcGolden(datasets::CorruptBicycle(clean, dirt_rng),
                         "bicycle_dirty_seed1105_48.dqc");
}

TEST(ColumnarGoldenTest, GooglePlayCleanAndDirty) {
  Rng rng(106);
  const Table clean = datasets::GenerateGooglePlayClean(48, rng);
  ExpectMatchesDqcGolden(clean, "google_play_clean_seed106_48.dqc");
  Rng dirt_rng(1106);
  ExpectMatchesDqcGolden(datasets::CorruptGooglePlay(clean, dirt_rng),
                         "google_play_dirty_seed1106_48.dqc");
}

// Determinism backs the goldens: two writes of the same table are
// byte-identical, independent of block size changes being visible.
TEST(ColumnarGoldenTest, WriterIsDeterministic) {
  Rng rng(106);
  const Table table = datasets::GenerateGooglePlayClean(48, rng);
  ColumnarWriterOptions options;
  options.block_rows = 7;
  const std::string p1 = TempPath("det1.dqc");
  const std::string p2 = TempPath("det2.dqc");
  ASSERT_TRUE(WriteColumnarFile(table, p1, options).ok());
  ASSERT_TRUE(WriteColumnarFile(table, p2, options).ok());
  EXPECT_EQ(ReadFileBytes(p1), ReadFileBytes(p2));
}

// ---- Round trip: CSV -> columnar -> Table == CSV -> Table ------------------

/// One dataset's property sweep: serialize to CSV (the %.10g-faithful
/// reference representation), convert to .dqc at several block sizes, and
/// assert both readers reproduce the CSV-loaded table bit for bit at every
/// chunk size, including chunks that span block boundaries.
void RunRoundTripSweep(const Table& source, const std::string& tag) {
  const std::string csv_path = TempPath(tag + ".csv");
  ASSERT_TRUE(WriteCsvFile(source.ToCsv(), csv_path).ok());
  auto doc = ReadCsvFile(csv_path);
  ASSERT_TRUE(doc.ok());
  auto reference = Table::FromCsv(source.schema(), *doc);
  ASSERT_TRUE(reference.ok());
  const int64_t rows = reference->num_rows();

  for (int64_t block_rows : {int64_t{5}, int64_t{16}, int64_t{4096}}) {
    const std::string dqc_path =
        TempPath(tag + "_b" + std::to_string(block_rows) + ".dqc");
    auto converted = ConvertCsvToColumnar(csv_path, source.schema(), dqc_path,
                                          {.block_rows = block_rows});
    ASSERT_TRUE(converted.ok()) << converted.status().ToString();
    EXPECT_EQ(*converted, rows);

    // Whole-table materialization.
    auto whole = ReadColumnarTable(dqc_path);
    ASSERT_TRUE(whole.ok()) << whole.status().ToString();
    ExpectTablesBitIdentical(*whole, *reference);

    for (int64_t chunk_rows :
         {int64_t{1}, int64_t{7}, int64_t{256}, rows + 5}) {
      SCOPED_TRACE(tag + " block=" + std::to_string(block_rows) +
                   " chunk=" + std::to_string(chunk_rows));
      auto columnar =
          ColumnarReader::Open(dqc_path, {.chunk_rows = chunk_rows});
      ASSERT_TRUE(columnar.ok()) << columnar.status().ToString();
      ExpectTablesBitIdentical(DrainReader(**columnar), *reference);

      CsvChunkReaderOptions csv_options;
      csv_options.chunk_rows = chunk_rows;
      auto csv_reader =
          CsvChunkReader::Open(csv_path, source.schema(), csv_options);
      ASSERT_TRUE(csv_reader.ok()) << csv_reader.status().ToString();
      ExpectTablesBitIdentical(DrainReader(**csv_reader), *reference);
    }
  }
}

TEST(ColumnarRoundTripTest, GooglePlayDirtySweep) {
  // Dirty Google Play rows carry typos, missing numerics, and missing
  // categoricals — the full null-bitmap + dictionary surface.
  Rng rng(106);
  Rng dirt_rng(1106);
  RunRoundTripSweep(datasets::CorruptGooglePlay(
                        datasets::GenerateGooglePlayClean(60, rng), dirt_rng),
                    "round_trip_google_play");
}

TEST(ColumnarRoundTripTest, NyTaxiSweep) {
  Rng rng(103);
  RunRoundTripSweep(datasets::GenerateNyTaxi(53, rng, /*dims=*/10),
                    "round_trip_ny_taxi");
}

// ---- Zero-copy views -------------------------------------------------------

Table SmallMixedTable() {
  Table t(Schema({{"x", ColumnType::kNumeric, ""},
                  {"label", ColumnType::kCategorical, ""}}));
  t.AppendRow({1.5}, {"b"});
  t.AppendRow({MissingValue()}, {"a"});
  t.AppendRow({-2.25}, {"b"});
  t.AppendRow({0.0}, {""});
  t.AppendRow({7.0}, {"c"});
  return t;
}

TEST(ColumnarViewTest, ViewsExposePayloadsAndFirstAppearanceDictionary) {
  const Table table = SmallMixedTable();
  const std::string path = TempPath("views.dqc");
  ASSERT_TRUE(WriteColumnarFile(table, path, {.block_rows = 3}).ok());
  auto reader = ColumnarReader::Open(path);
  ASSERT_TRUE(reader.ok()) << reader.status().ToString();
  ColumnarReader& r = **reader;
  ASSERT_EQ(r.num_rows(), 5);
  ASSERT_EQ(r.num_blocks(), 2);
  EXPECT_TRUE(r.is_mapped());

  // Dictionary codes are assigned in first-appearance order: b, a, c.
  const std::vector<std::string> want_dict = {"b", "a", "c"};
  EXPECT_EQ(r.dictionary(1), want_dict);

  auto num0 = r.NumericBlock(0, 0);
  ASSERT_TRUE(num0.ok()) << num0.status().ToString();
  ASSERT_EQ(num0->rows, 3);
  EXPECT_EQ(num0->values[0], 1.5);
  EXPECT_EQ(num0->values[2], -2.25);
  EXPECT_TRUE(columnar::BitmapGet(num0->bitmap, 0));
  EXPECT_FALSE(columnar::BitmapGet(num0->bitmap, 1));  // missing row 1
  EXPECT_TRUE(std::isnan(num0->values[1]));  // canonical NaN in null slot

  auto cat0 = r.CategoricalBlock(0, 1);
  ASSERT_TRUE(cat0.ok()) << cat0.status().ToString();
  EXPECT_EQ(cat0->codes[0], 0u);  // "b"
  EXPECT_EQ(cat0->codes[1], 1u);  // "a"
  EXPECT_EQ(cat0->codes[2], 0u);  // "b"

  auto cat1 = r.CategoricalBlock(1, 1);
  ASSERT_TRUE(cat1.ok());
  ASSERT_EQ(cat1->rows, 2);
  EXPECT_FALSE(columnar::BitmapGet(cat1->bitmap, 0));  // "" row 3
  EXPECT_EQ(cat1->codes[0], 0u);  // null slots keep the zero code
  EXPECT_TRUE(columnar::BitmapGet(cat1->bitmap, 1));
  EXPECT_EQ(cat1->codes[1], 2u);  // "c"

  // Type-mismatched view requests fail with Status, not a CHECK.
  EXPECT_FALSE(r.NumericBlock(0, 1).ok());
  EXPECT_FALSE(r.CategoricalBlock(0, 0).ok());
  EXPECT_FALSE(r.NumericBlock(99, 0).ok());
}

TEST(ColumnarViewTest, BytesTouchedIsLazyAndResetKeepsWarmCache) {
  Rng rng(103);
  const Table table = datasets::GenerateNyTaxi(40, rng, /*dims=*/10);
  const std::string path = TempPath("warm.dqc");
  ASSERT_TRUE(WriteColumnarFile(table, path, {.block_rows = 16}).ok());
  auto reader = ColumnarReader::Open(path, {.chunk_rows = 8});
  ASSERT_TRUE(reader.ok());
  ColumnarReader& r = **reader;

  // Open validates the footer but touches no payload.
  EXPECT_EQ(r.bytes_touched(), 0u);

  const Table first = DrainReader(r);
  EXPECT_EQ(first.num_rows(), 40);
  EXPECT_EQ(r.rows_delivered(), 40);
  const uint64_t cold_bytes = r.bytes_touched();
  EXPECT_GT(cold_bytes, 0u);

  // Warm pass: same rows, no new verification work.
  r.Reset();
  EXPECT_EQ(r.rows_delivered(), 0);
  const Table second = DrainReader(r);
  ExpectTablesBitIdentical(first, second);
  EXPECT_EQ(r.bytes_touched(), cold_bytes);
}

// ---- Out-of-core training: bit-identical to the in-memory path -------------

FeatureGraph ChainGraph(int64_t features) {
  FeatureGraph g(features);
  for (int64_t i = 0; i + 1 < features; ++i) {
    g.AddUndirectedEdge(i, i + 1);
  }
  return g;
}

DquagConfig SmallTrainConfig() {
  DquagConfig config;
  config.encoder.kind = EncoderKind::kGatGin;
  config.encoder.hidden_dim = 16;
  config.encoder.num_layers = 2;
  config.epochs = 2;
  config.batch_size = 64;
  return config;
}

void ExpectReportsBitIdentical(const TrainingReport& a,
                               const TrainingReport& b) {
  EXPECT_EQ(a.epochs_run, b.epochs_run);
  ASSERT_EQ(a.epoch_losses.size(), b.epoch_losses.size());
  for (size_t e = 0; e < a.epoch_losses.size(); ++e) {
    EXPECT_EQ(a.epoch_losses[e], b.epoch_losses[e]) << "epoch " << e;
  }
  EXPECT_EQ(a.error_statistics.threshold, b.error_statistics.threshold);
  ASSERT_EQ(a.clean_errors.size(), b.clean_errors.size());
  for (size_t i = 0; i < a.clean_errors.size(); ++i) {
    EXPECT_EQ(a.clean_errors[i], b.clean_errors[i]) << "row " << i;
  }
}

TEST(ColumnarTrainingTest, FitFromColumnarMatchesInMemoryBitForBit) {
  Rng rng(21);
  const Table clean = datasets::GenerateGooglePlayClean(192, rng);
  TablePreprocessor preprocessor;
  preprocessor.Fit(clean);
  const Tensor matrix = preprocessor.Transform(clean);
  const int64_t d = clean.num_columns();

  // Odd block size so training batches routinely straddle block boundaries.
  const std::string path = TempPath("train.dqc");
  ASSERT_TRUE(WriteColumnarFile(clean, path, {.block_rows = 19}).ok());
  auto reader = ColumnarReader::Open(path);
  ASSERT_TRUE(reader.ok());
  auto source = ColumnarTrainingSource::Create(reader->get(), preprocessor);
  ASSERT_TRUE(source.ok()) << source.status().ToString();
  EXPECT_EQ((*source)->num_rows(), 192);
  EXPECT_EQ((*source)->num_features(), d);

  const DquagConfig config = SmallTrainConfig();
  Rng model_rng_mem(11);
  DquagModel model_mem(ChainGraph(d), config, model_rng_mem);
  Trainer trainer_mem(&model_mem, config);
  const TrainingReport in_memory = trainer_mem.Fit(matrix);

  Rng model_rng_col(11);
  DquagModel model_col(ChainGraph(d), config, model_rng_col);
  Trainer trainer_col(&model_col, config);
  auto columnar = trainer_col.Fit(**source);
  ASSERT_TRUE(columnar.ok()) << columnar.status().ToString();

  ExpectReportsBitIdentical(in_memory, *columnar);
}

TEST(ColumnarTrainingTest, ShardedFitFromColumnarMatchesInMemory) {
  Rng rng(22);
  const Table clean = datasets::GenerateGooglePlayClean(160, rng);
  TablePreprocessor preprocessor;
  preprocessor.Fit(clean);
  const Tensor matrix = preprocessor.Transform(clean);
  const int64_t d = clean.num_columns();

  const std::string path = TempPath("train_sharded.dqc");
  ASSERT_TRUE(WriteColumnarFile(clean, path, {.block_rows = 23}).ok());
  auto reader = ColumnarReader::Open(path);
  ASSERT_TRUE(reader.ok());
  auto source = ColumnarTrainingSource::Create(reader->get(), preprocessor);
  ASSERT_TRUE(source.ok()) << source.status().ToString();

  DquagConfig config = SmallTrainConfig();
  config.train_shards = 8;  // PR-4 parallel fast path
  ThreadPool pool(4);

  Rng model_rng_mem(13);
  DquagModel model_mem(ChainGraph(d), config, model_rng_mem);
  Trainer trainer_mem(&model_mem, config);
  trainer_mem.set_thread_pool(&pool);
  const TrainingReport in_memory = trainer_mem.Fit(matrix);

  Rng model_rng_col(13);
  DquagModel model_col(ChainGraph(d), config, model_rng_col);
  Trainer trainer_col(&model_col, config);
  trainer_col.set_thread_pool(&pool);
  auto columnar = trainer_col.Fit(**source);
  ASSERT_TRUE(columnar.ok()) << columnar.status().ToString();

  ExpectReportsBitIdentical(in_memory, *columnar);
}

TEST(ColumnarTrainingTest, SourceRejectsUnfittedAndMismatchedPreprocessor) {
  Rng rng(23);
  const Table clean = datasets::GenerateGooglePlayClean(32, rng);
  const std::string path = TempPath("train_reject.dqc");
  ASSERT_TRUE(WriteColumnarFile(clean, path).ok());
  auto reader = ColumnarReader::Open(path);
  ASSERT_TRUE(reader.ok());

  TablePreprocessor unfitted;
  EXPECT_FALSE(ColumnarTrainingSource::Create(reader->get(), unfitted).ok());

  Rng taxi_rng(24);
  TablePreprocessor other;
  other.Fit(datasets::GenerateNyTaxi(32, taxi_rng, /*dims=*/5));
  EXPECT_FALSE(ColumnarTrainingSource::Create(reader->get(), other).ok());
}

// ---- Streaming validation over .dqc: parity with whole-table Validate ------

struct ParityCase {
  std::string name;
  std::function<Table(int64_t, Rng&)> clean;
  // Null when the dataset has a Corrupt* generator instead.
  std::function<Table(const Table&, Rng&)> corrupt;
};

/// First numeric column of a schema (for datasets without a Corrupt*
/// generator, dirt comes from the §4.1.2 injector on that column).
std::string FirstNumericColumn(const Schema& schema) {
  for (int64_t c = 0; c < schema.num_columns(); ++c) {
    if (schema.column(c).type == ColumnType::kNumeric) {
      return schema.column(c).name;
    }
  }
  ADD_FAILURE() << "schema has no numeric column";
  return "";
}

TEST(ColumnarValidateStreamTest, AllSixDatasetsMatchWholeTableValidation) {
  const std::vector<ParityCase> cases = {
      {"hotel",
       [](int64_t n, Rng& r) { return datasets::GenerateHotelBooking(n, r); },
       nullptr},
      {"credit",
       [](int64_t n, Rng& r) { return datasets::GenerateCreditCard(n, r); },
       nullptr},
      {"taxi",
       [](int64_t n, Rng& r) {
         return datasets::GenerateNyTaxi(n, r, /*dims=*/10);
       },
       nullptr},
      {"airbnb",
       [](int64_t n, Rng& r) { return datasets::GenerateAirbnbClean(n, r); },
       [](const Table& t, Rng& r) { return datasets::CorruptAirbnb(t, r); }},
      {"bicycle",
       [](int64_t n, Rng& r) { return datasets::GenerateBicycleClean(n, r); },
       [](const Table& t, Rng& r) { return datasets::CorruptBicycle(t, r); }},
      {"google_play",
       [](int64_t n, Rng& r) {
         return datasets::GenerateGooglePlayClean(n, r);
       },
       [](const Table& t, Rng& r) {
         return datasets::CorruptGooglePlay(t, r);
       }},
  };

  size_t total_flagged = 0;
  for (size_t i = 0; i < cases.size(); ++i) {
    const ParityCase& c = cases[i];
    SCOPED_TRACE(c.name);
    const uint64_t seed = 31 + i;

    Rng train_rng(seed);
    const Table train = c.clean(128, train_rng);
    DquagPipelineOptions options;
    options.config.encoder.hidden_dim = 16;
    options.config.epochs = 2;
    options.config.batch_size = 64;
    DquagPipeline pipeline(std::move(options));
    ASSERT_TRUE(pipeline.Fit(train).ok());

    Rng eval_rng(seed + 1000);
    Table eval = c.clean(96, eval_rng);
    if (c.corrupt) {
      Rng dirt_rng(seed + 2000);
      eval = c.corrupt(eval, dirt_rng);
    } else {
      ErrorInjector injector(seed + 2000);
      eval = injector
                 .InjectNumericAnomalies(
                     eval, {FirstNumericColumn(eval.schema())}, 0.15)
                 .table;
    }

    // The CSV file is the interchange source of truth; both the in-memory
    // table and the .dqc derive from it.
    const std::string csv_path = TempPath("parity_" + c.name + ".csv");
    const std::string dqc_path = TempPath("parity_" + c.name + ".dqc");
    ASSERT_TRUE(WriteCsvFile(eval.ToCsv(), csv_path).ok());
    auto converted = ConvertCsvToColumnar(csv_path, eval.schema(), dqc_path,
                                          {.block_rows = 16});
    ASSERT_TRUE(converted.ok()) << converted.status().ToString();

    auto doc = ReadCsvFile(csv_path);
    ASSERT_TRUE(doc.ok());
    auto csv_table = Table::FromCsv(eval.schema(), *doc);
    ASSERT_TRUE(csv_table.ok());
    const BatchVerdict batch = pipeline.Validate(*csv_table);
    total_flagged += batch.flagged_rows.size();

    auto reader = ColumnarReader::Open(dqc_path, {.chunk_rows = 17});
    ASSERT_TRUE(reader.ok()) << reader.status().ToString();
    StreamingValidator streamer(&pipeline);
    auto stream = streamer.Run(**reader);
    ASSERT_TRUE(stream.ok()) << stream.status().ToString();

    EXPECT_EQ(stream->total_rows, csv_table->num_rows());
    EXPECT_EQ(stream->flagged_rows, batch.flagged_rows);
    EXPECT_EQ(stream->flagged_fraction, batch.flagged_fraction);
    EXPECT_EQ(stream->is_dirty, batch.is_dirty);
    EXPECT_EQ(stream->threshold, batch.threshold);
    const StreamErrorStats expected = StreamErrorStats::FromVerdict(batch);
    EXPECT_EQ(stream->error_stats.sum, expected.sum);
    EXPECT_EQ(stream->error_stats.sum_squares, expected.sum_squares);
    EXPECT_EQ(stream->error_stats.min, expected.min);
    EXPECT_EQ(stream->error_stats.max, expected.max);
  }
  // At least one dataset must actually flag rows, or parity is vacuous.
  EXPECT_GT(total_flagged, 0u);
}

// ---- Edge cases ------------------------------------------------------------

TEST(ColumnarEdgeCaseTest, EmptyCsvFileFailsCleanly) {
  const std::string path = TempPath("empty.csv");
  { std::ofstream out(path, std::ios::binary); }
  const Schema schema({{"x", ColumnType::kNumeric, ""}});
  auto reader = CsvChunkReader::Open(path, schema);
  EXPECT_FALSE(reader.ok());
  auto converted =
      ConvertCsvToColumnar(path, schema, TempPath("empty.dqc"));
  EXPECT_FALSE(converted.ok());
}

TEST(ColumnarEdgeCaseTest, HeaderOnlyCsvRoundTripsAsZeroRows) {
  const Schema schema({{"x", ColumnType::kNumeric, ""},
                       {"label", ColumnType::kCategorical, ""}});
  const std::string csv_path = TempPath("header_only.csv");
  {
    std::ofstream out(csv_path, std::ios::binary);
    out << "x,label\n";
  }
  const std::string dqc_path = TempPath("header_only.dqc");
  auto converted = ConvertCsvToColumnar(csv_path, schema, dqc_path);
  ASSERT_TRUE(converted.ok()) << converted.status().ToString();
  EXPECT_EQ(*converted, 0);

  auto reader = ColumnarReader::Open(dqc_path);
  ASSERT_TRUE(reader.ok()) << reader.status().ToString();
  EXPECT_EQ((*reader)->num_rows(), 0);
  EXPECT_EQ((*reader)->num_blocks(), 0);
  EXPECT_TRUE((*reader)->schema() == schema);
  Table chunk;
  auto got = (*reader)->Next(chunk);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, 0);

  auto whole = ReadColumnarTable(dqc_path);
  ASSERT_TRUE(whole.ok());
  EXPECT_EQ(whole->num_rows(), 0);
}

TEST(ColumnarEdgeCaseTest, AllNullColumnsRoundTrip) {
  Table t(Schema({{"x", ColumnType::kNumeric, ""},
                  {"label", ColumnType::kCategorical, ""}}));
  for (int r = 0; r < 10; ++r) {
    t.AppendRow({MissingValue()}, {""});
  }
  const std::string path = TempPath("all_null.dqc");
  ASSERT_TRUE(WriteColumnarFile(t, path, {.block_rows = 4}).ok());
  auto reader = ColumnarReader::Open(path);
  ASSERT_TRUE(reader.ok()) << reader.status().ToString();
  // All-null categorical column: empty dictionary, every code zero.
  EXPECT_TRUE((*reader)->dictionary(1).empty());
  ExpectTablesBitIdentical(DrainReader(**reader), t);
}

TEST(ColumnarEdgeCaseTest, DictionaryBeyond255DistinctValuesRoundTrips) {
  Table t(Schema({{"label", ColumnType::kCategorical, ""}}));
  for (int r = 0; r < 600; ++r) {
    t.AppendRow({}, {"value_" + std::to_string(r % 300)});
  }
  const std::string path = TempPath("big_dict.dqc");
  ASSERT_TRUE(WriteColumnarFile(t, path, {.block_rows = 128}).ok());
  auto reader = ColumnarReader::Open(path);
  ASSERT_TRUE(reader.ok()) << reader.status().ToString();
  EXPECT_EQ((*reader)->dictionary(0).size(), 300u);
  ExpectTablesBitIdentical(DrainReader(**reader), t);
}

TEST(ColumnarEdgeCaseTest, TrailingJunkNumericCellIsRejected) {
  const Schema schema({{"x", ColumnType::kNumeric, ""}});
  CsvDocument doc;
  doc.header = {"x"};
  doc.rows = {{"12abc"}};
  auto table = Table::FromCsv(schema, doc);
  EXPECT_FALSE(table.ok());
  EXPECT_NE(table.status().ToString().find("non-numeric"), std::string::npos);
  // A plain number and an empty (missing) cell still parse.
  doc.rows = {{"12"}, {""}};
  EXPECT_TRUE(Table::FromCsv(schema, doc).ok());
}

TEST(ColumnarEdgeCaseTest, WriterRejectsMisuse) {
  const Schema schema({{"x", ColumnType::kNumeric, ""}});
  const Schema other({{"y", ColumnType::kNumeric, ""}});
  const std::string path = TempPath("misuse.dqc");
  auto writer = ColumnarWriter::Open(path, schema);
  ASSERT_TRUE(writer.ok());

  Table wrong(other);
  wrong.AppendRow({1.0}, {});
  EXPECT_FALSE((*writer)->Append(wrong).ok());

  Table right(schema);
  right.AppendRow({1.0}, {});
  ASSERT_TRUE((*writer)->Append(right).ok());
  ASSERT_TRUE((*writer)->Finish().ok());
  EXPECT_FALSE((*writer)->Finish().ok());        // Finish twice
  EXPECT_FALSE((*writer)->Append(right).ok());   // Append after Finish

  EXPECT_FALSE(
      ColumnarWriter::Open(path, schema, {.block_rows = 0}).ok());
  EXPECT_FALSE(
      ColumnarWriter::Open(path, Schema(std::vector<ColumnSpec>{})).ok());
}

}  // namespace
}  // namespace dquag
