// Stress and large-input tests: exercise the parallel code paths that small
// unit-test tensors never reach (elementwise, matmul, gather/scatter above
// the dispatch thresholds), plus thread-pool contention.

#include <atomic>
#include <cmath>

#include <gtest/gtest.h>

#include "tensor/tensor_ops.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace dquag {
namespace {

TEST(StressTest, LargeElementwiseMatchesSerialSemantics) {
  // 8M elements: well above the elementwise parallel threshold.
  Rng rng(1);
  Tensor a = Tensor::Randn({2048, 64, 64}, rng);
  Tensor b = Tensor::Randn({2048, 64, 64}, rng);
  Tensor sum = Add(a, b);
  // Spot-check against direct arithmetic.
  for (int64_t i : {0L, 123456L, 8388607L}) {
    EXPECT_FLOAT_EQ(sum[i], a[i] + b[i]);
  }
  Tensor act = Relu(sum);
  for (int64_t i : {7L, 4194304L}) {
    EXPECT_FLOAT_EQ(act[i], sum[i] > 0 ? sum[i] : 0.0f);
  }
}

TEST(StressTest, LargeBroadcastParallelPathCorrect) {
  // [4096, 16, 64] op [16, 64]: the parallel rank-3 broadcast path.
  Rng rng(2);
  Tensor a = Tensor::Randn({4096, 16, 64}, rng);
  Tensor b = Tensor::Randn({16, 64}, rng);
  Tensor out = Mul(a, b);
  for (int64_t batch : {0L, 1000L, 4095L}) {
    for (int64_t i : {0L, 7L}) {
      for (int64_t j : {0L, 63L}) {
        ASSERT_FLOAT_EQ(out(batch, i, j), a(batch, i, j) * b(i, j));
      }
    }
  }
}

TEST(StressTest, LargeMatMulParallelMatchesSerialBlock) {
  // Above the matmul parallel threshold; compare a block against a serial
  // computation of the same block.
  Rng rng(3);
  Tensor a = Tensor::Randn({4096, 64}, rng);
  Tensor b = Tensor::Randn({64, 64}, rng);
  Tensor c = MatMul(a, b);
  for (int64_t i : {0L, 2047L, 4095L}) {
    for (int64_t j : {0L, 63L}) {
      float expected = 0.0f;
      for (int64_t k = 0; k < 64; ++k) expected += a(i, k) * b(k, j);
      ASSERT_NEAR(c(i, j), expected, 1e-2f);
    }
  }
}

TEST(StressTest, LargeGatherScatterParallelPath) {
  Rng rng(4);
  Tensor t = Tensor::Randn({4096, 20, 64}, rng);  // > threshold
  std::vector<int32_t> indices;
  for (int32_t e = 0; e < 40; ++e) {
    indices.push_back(static_cast<int32_t>(rng.UniformInt(0, 19)));
  }
  Tensor gathered = GatherAxis1(t, indices);
  ASSERT_EQ(gathered.shape(), (Shape{4096, 40, 64}));
  for (int64_t b : {0L, 4095L}) {
    for (size_t e : {size_t{0}, size_t{39}}) {
      for (int64_t k : {0L, 63L}) {
        ASSERT_FLOAT_EQ(gathered(b, static_cast<int64_t>(e), k),
                        t(b, indices[e], k));
      }
    }
  }
  // Scatter of all-ones counts index multiplicity.
  Tensor ones = Tensor::Ones({4096, 40, 64});
  Tensor scattered = ScatterAddAxis1(ones, indices, 20);
  std::vector<int> multiplicity(20, 0);
  for (int32_t idx : indices) ++multiplicity[static_cast<size_t>(idx)];
  for (int64_t v = 0; v < 20; ++v) {
    ASSERT_FLOAT_EQ(scattered(0, v, 0),
                    static_cast<float>(multiplicity[static_cast<size_t>(v)]));
    ASSERT_FLOAT_EQ(scattered(4095, v, 63),
                    static_cast<float>(multiplicity[static_cast<size_t>(v)]));
  }
}

TEST(StressTest, LargeSegmentSoftmaxParallelPath) {
  Rng rng(5);
  const int64_t batch = 8192, num = 64;
  Tensor scores = Tensor::Randn({batch, num}, rng);
  std::vector<int32_t> segments;
  for (int64_t e = 0; e < num; ++e) {
    segments.push_back(static_cast<int32_t>(e % 8));
  }
  Tensor alpha = SegmentSoftmaxAxis1(scores, segments, 8);
  for (int64_t b : {0L, 8191L}) {
    std::vector<float> sums(8, 0.0f);
    for (int64_t e = 0; e < num; ++e) {
      sums[static_cast<size_t>(segments[static_cast<size_t>(e)])] +=
          alpha(b, e);
    }
    for (float s : sums) ASSERT_NEAR(s, 1.0f, 1e-4f);
  }
}

TEST(StressTest, ThreadPoolManySmallParallelFors) {
  // Back-to-back dispatches must not deadlock or drop work.
  for (int round = 0; round < 200; ++round) {
    std::atomic<int64_t> sum{0};
    ParallelFor(0, 1000, [&](size_t i) {
      sum.fetch_add(static_cast<int64_t>(i), std::memory_order_relaxed);
    }, /*grain=*/16);
    ASSERT_EQ(sum.load(), 1000LL * 999 / 2);
  }
}

TEST(StressTest, ConcurrentSubmittersShareThePool) {
  // Multiple external threads driving the global pool simultaneously.
  std::atomic<int64_t> total{0};
  std::vector<std::thread> drivers;
  for (int t = 0; t < 4; ++t) {
    drivers.emplace_back([&total] {
      for (int round = 0; round < 20; ++round) {
        std::atomic<int64_t> local{0};
        ParallelFor(0, 512, [&](size_t) {
          local.fetch_add(1, std::memory_order_relaxed);
        }, /*grain=*/8);
        total.fetch_add(local.load());
      }
    });
  }
  for (auto& d : drivers) d.join();
  EXPECT_EQ(total.load(), 4 * 20 * 512);
}

TEST(StressTest, ReduceToShapeLargeBroadcastGrad) {
  // Gradient reduction over a big broadcast: [4096,16,64] -> [16,64].
  Tensor g = Tensor::Ones({4096, 16, 64});
  Tensor reduced = ReduceToShape(g, {16, 64});
  ASSERT_EQ(reduced.shape(), (Shape{16, 64}));
  for (int64_t i : {0L, 1023L}) EXPECT_FLOAT_EQ(reduced[i], 4096.0f);
}

}  // namespace
}  // namespace dquag
