// Unit tests for the tensor substrate: construction, elementwise ops,
// broadcasting, reductions, matmul variants, and the graph kernels.

#include <cmath>

#include <gtest/gtest.h>

#include "tensor/tensor_ops.h"
#include "util/rng.h"

namespace dquag {
namespace {

TEST(TensorTest, ConstructionAndShape) {
  Tensor t({2, 3});
  EXPECT_EQ(t.ndim(), 2);
  EXPECT_EQ(t.dim(0), 2);
  EXPECT_EQ(t.dim(1), 3);
  EXPECT_EQ(t.dim(-1), 3);
  EXPECT_EQ(t.numel(), 6);
  for (int64_t i = 0; i < t.numel(); ++i) EXPECT_EQ(t[i], 0.0f);
}

TEST(TensorTest, FactoryFunctions) {
  EXPECT_EQ(Tensor::Ones({2, 2})[3], 1.0f);
  EXPECT_EQ(Tensor::Full({3}, 2.5f)[1], 2.5f);
  EXPECT_EQ(Tensor::Scalar(7.0f).numel(), 1);
  Tensor ar = Tensor::Arange(4);
  EXPECT_EQ(ar[0], 0.0f);
  EXPECT_EQ(ar[3], 3.0f);
}

TEST(TensorTest, RandomFactoriesAreDeterministic) {
  Rng rng1(5), rng2(5);
  Tensor a = Tensor::Randn({32}, rng1);
  Tensor b = Tensor::Randn({32}, rng2);
  EXPECT_TRUE(a.Equals(b));
}

TEST(TensorTest, ElementAccess) {
  Tensor t({2, 3});
  t(1, 2) = 5.0f;
  EXPECT_EQ(t[5], 5.0f);
  Tensor t3({2, 3, 4});
  t3(1, 2, 3) = 9.0f;
  EXPECT_EQ(t3[23], 9.0f);
}

TEST(TensorTest, ReshapeKeepsDataAndInfersDim) {
  Tensor t = Tensor::Arange(12);
  Tensor r = t.Reshape({3, -1});
  EXPECT_EQ(r.dim(1), 4);
  EXPECT_EQ(r(2, 3), 11.0f);
}

TEST(TensorTest, AddSameShape) {
  Tensor a({2, 2}, {1, 2, 3, 4});
  Tensor b({2, 2}, {10, 20, 30, 40});
  Tensor c = Add(a, b);
  EXPECT_EQ(c(1, 1), 44.0f);
}

TEST(TensorTest, BroadcastTrailing) {
  Tensor a({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor b({3}, {10, 20, 30});
  Tensor c = Add(a, b);
  EXPECT_EQ(c(0, 0), 11.0f);
  EXPECT_EQ(c(1, 2), 36.0f);
}

TEST(TensorTest, BroadcastMiddleOnes) {
  // [2,1,2] * [3,1] (right-aligned) -> [2,3,2]
  Tensor a({2, 1, 2}, {1, 2, 3, 4});
  Tensor b({3, 1}, {1, 10, 100});
  Tensor c = Mul(a, b);
  ASSERT_EQ(c.shape(), (Shape{2, 3, 2}));
  EXPECT_EQ(c(0, 0, 0), 1.0f);
  EXPECT_EQ(c(0, 2, 1), 200.0f);
  EXPECT_EQ(c(1, 1, 0), 30.0f);
}

TEST(TensorTest, BroadcastScalar) {
  Tensor a({2, 2}, {1, 2, 3, 4});
  Tensor c = Mul(a, Tensor::Scalar(3.0f));
  EXPECT_EQ(c(1, 0), 9.0f);
}

TEST(TensorTest, ReduceToShapeInvertsBroadcast) {
  Tensor g({2, 3}, {1, 1, 1, 1, 1, 1});
  Tensor reduced = ReduceToShape(g, {3});
  EXPECT_EQ(reduced.numel(), 3);
  EXPECT_EQ(reduced[0], 2.0f);
  Tensor reduced2 = ReduceToShape(g, {2, 1});
  EXPECT_EQ(reduced2(0, 0), 3.0f);
}

TEST(TensorTest, UnaryOps) {
  Tensor a({3}, {-1.0f, 0.0f, 2.0f});
  EXPECT_EQ(Relu(a)[0], 0.0f);
  EXPECT_EQ(Relu(a)[2], 2.0f);
  EXPECT_FLOAT_EQ(LeakyRelu(a, 0.1f)[0], -0.1f);
  EXPECT_FLOAT_EQ(Abs(a)[0], 1.0f);
  EXPECT_FLOAT_EQ(Square(a)[2], 4.0f);
  EXPECT_FLOAT_EQ(Sigmoid(Tensor::Scalar(0.0f))[0], 0.5f);
  EXPECT_NEAR(Elu(a)[0], std::exp(-1.0f) - 1.0f, 1e-6);
  EXPECT_FLOAT_EQ(Clamp(a, -0.5f, 1.0f)[0], -0.5f);
  EXPECT_FLOAT_EQ(Clamp(a, -0.5f, 1.0f)[2], 1.0f);
}

TEST(TensorTest, MatMul2DMatchesManual) {
  Tensor a({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor b({3, 2}, {7, 8, 9, 10, 11, 12});
  Tensor c = MatMul(a, b);
  EXPECT_EQ(c(0, 0), 58.0f);
  EXPECT_EQ(c(0, 1), 64.0f);
  EXPECT_EQ(c(1, 0), 139.0f);
  EXPECT_EQ(c(1, 1), 154.0f);
}

TEST(TensorTest, MatMul3DSharedWeight) {
  Rng rng(3);
  Tensor a = Tensor::Randn({4, 5, 6}, rng);
  Tensor w = Tensor::Randn({6, 2}, rng);
  Tensor c = MatMul(a, w);
  ASSERT_EQ(c.shape(), (Shape{4, 5, 2}));
  // Cross-check one batch against 2-D matmul.
  Tensor a0 = Slice(a, 0, 1, 2).Reshape({5, 6});
  Tensor c0 = MatMul(a0, w);
  for (int64_t i = 0; i < 5; ++i) {
    for (int64_t j = 0; j < 2; ++j) {
      EXPECT_NEAR(c(1, i, j), c0(i, j), 1e-4);
    }
  }
}

TEST(TensorTest, MatMulBatchedBothSides) {
  Rng rng(4);
  Tensor a = Tensor::Randn({3, 2, 4}, rng);
  Tensor b = Tensor::Randn({3, 4, 2}, rng);
  Tensor c = MatMul(a, b);
  ASSERT_EQ(c.shape(), (Shape{3, 2, 2}));
  // Verify one element by hand.
  float expected = 0.0f;
  for (int64_t k = 0; k < 4; ++k) expected += a(2, 1, k) * b(2, k, 0);
  EXPECT_NEAR(c(2, 1, 0), expected, 1e-4);
}

TEST(TensorTest, MatMulTransAMatchesExplicitTranspose) {
  Rng rng(5);
  Tensor a = Tensor::Randn({7, 3}, rng);
  Tensor b = Tensor::Randn({7, 4}, rng);
  Tensor direct = MatMulTransA(a, b);
  Tensor reference = MatMul(TransposeLast2(a), b);
  EXPECT_TRUE(direct.AllClose(reference, 1e-4f));
}

TEST(TensorTest, MatMulTransBMatchesExplicitTranspose) {
  Rng rng(6);
  Tensor a = Tensor::Randn({5, 4}, rng);
  Tensor b = Tensor::Randn({3, 4}, rng);
  Tensor direct = MatMulTransB(a, b);
  Tensor reference = MatMul(a, TransposeLast2(b));
  EXPECT_TRUE(direct.AllClose(reference, 1e-4f));
}

TEST(TensorTest, MatMulTransA3DFlattensLeading) {
  Rng rng(7);
  Tensor a = Tensor::Randn({2, 5, 3}, rng);
  Tensor g = Tensor::Randn({2, 5, 4}, rng);
  Tensor direct = MatMulTransA(a, g);
  Tensor reference =
      MatMul(TransposeLast2(a.Reshape({10, 3})), g.Reshape({10, 4}));
  EXPECT_TRUE(direct.AllClose(reference, 1e-4f));
}

TEST(TensorTest, Reductions) {
  Tensor a({2, 3}, {1, 2, 3, 4, 5, 6});
  EXPECT_FLOAT_EQ(SumAll(a), 21.0f);
  EXPECT_FLOAT_EQ(MeanAll(a), 3.5f);
  EXPECT_FLOAT_EQ(MaxAll(a), 6.0f);
  EXPECT_FLOAT_EQ(MinAll(a), 1.0f);
  Tensor s0 = Sum(a, 0);
  ASSERT_EQ(s0.shape(), (Shape{3}));
  EXPECT_FLOAT_EQ(s0[0], 5.0f);
  Tensor s1 = Sum(a, 1, /*keepdims=*/true);
  ASSERT_EQ(s1.shape(), (Shape{2, 1}));
  EXPECT_FLOAT_EQ(s1[1], 15.0f);
  Tensor m1 = Mean(a, 1);
  EXPECT_FLOAT_EQ(m1[0], 2.0f);
  Tensor mx = Max(a, 0);
  EXPECT_FLOAT_EQ(mx[2], 6.0f);
}

TEST(TensorTest, SoftmaxSumsToOne) {
  Rng rng(8);
  Tensor a = Tensor::Randn({3, 5}, rng);
  Tensor s = Softmax(a, 1);
  for (int64_t i = 0; i < 3; ++i) {
    float total = 0.0f;
    for (int64_t j = 0; j < 5; ++j) {
      total += s(i, j);
      EXPECT_GT(s(i, j), 0.0f);
    }
    EXPECT_NEAR(total, 1.0f, 1e-5);
  }
}

TEST(TensorTest, ConcatAndSlice) {
  Tensor a({2, 2}, {1, 2, 3, 4});
  Tensor b({2, 3}, {5, 6, 7, 8, 9, 10});
  Tensor c = Concat({a, b}, 1);
  ASSERT_EQ(c.shape(), (Shape{2, 5}));
  EXPECT_EQ(c(0, 2), 5.0f);
  EXPECT_EQ(c(1, 4), 10.0f);
  Tensor back = Slice(c, 1, 2, 5);
  EXPECT_TRUE(back.Equals(b));
}

TEST(TensorTest, UnsqueezeSqueeze) {
  Tensor a({2, 3});
  EXPECT_EQ(Unsqueeze(a, 1).shape(), (Shape{2, 1, 3}));
  EXPECT_EQ(Squeeze(Unsqueeze(a, 0), 0).shape(), (Shape{2, 3}));
}

TEST(TensorTest, GatherAxis1Batched) {
  Tensor t({2, 3, 2}, {0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11});
  Tensor g = GatherAxis1(t, {2, 0});
  ASSERT_EQ(g.shape(), (Shape{2, 2, 2}));
  EXPECT_EQ(g(0, 0, 0), 4.0f);  // row 2 of batch 0
  EXPECT_EQ(g(0, 1, 1), 1.0f);  // row 0 of batch 0
  EXPECT_EQ(g(1, 0, 0), 10.0f);
}

TEST(TensorTest, ScatterAddAxis1AccumulatesDuplicates) {
  Tensor src({1, 3, 2}, {1, 1, 2, 2, 3, 3});
  Tensor out = ScatterAddAxis1(src, {0, 0, 1}, 2);
  ASSERT_EQ(out.shape(), (Shape{1, 2, 2}));
  EXPECT_EQ(out(0, 0, 0), 3.0f);  // 1 + 2
  EXPECT_EQ(out(0, 1, 1), 3.0f);
}

TEST(TensorTest, GatherScatterRoundTripIsIdentityForPermutation) {
  Rng rng(9);
  Tensor t = Tensor::Randn({3, 4, 5}, rng);
  std::vector<int32_t> perm = {2, 0, 3, 1};
  Tensor gathered = GatherAxis1(t, perm);
  Tensor restored = ScatterAddAxis1(gathered, perm, 4);
  EXPECT_TRUE(restored.AllClose(t));
}

TEST(TensorTest, SegmentSoftmaxNormalizesPerSegment) {
  Tensor scores({1, 4}, {1.0f, 2.0f, 3.0f, 4.0f});
  std::vector<int32_t> segments = {0, 0, 1, 1};
  Tensor alpha = SegmentSoftmaxAxis1(scores, segments, 2);
  EXPECT_NEAR(alpha(0, 0) + alpha(0, 1), 1.0f, 1e-5);
  EXPECT_NEAR(alpha(0, 2) + alpha(0, 3), 1.0f, 1e-5);
  EXPECT_GT(alpha(0, 1), alpha(0, 0));  // larger score, larger weight
}

TEST(TensorTest, SegmentSoftmaxHandlesEmptySegments) {
  Tensor scores({1, 2}, {1.0f, 2.0f});
  // Segment 1 has no entries; should not crash or produce NaN.
  Tensor alpha = SegmentSoftmaxAxis1(scores, {0, 0}, 3);
  EXPECT_NEAR(alpha(0, 0) + alpha(0, 1), 1.0f, 1e-5);
}

TEST(TensorTest, SegmentSumMatchesManual) {
  Tensor values({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor sums = SegmentSumAxis1(values, {1, 1, 0}, 2);
  ASSERT_EQ(sums.shape(), (Shape{2, 2}));
  EXPECT_EQ(sums(0, 0), 3.0f);
  EXPECT_EQ(sums(0, 1), 3.0f);
  EXPECT_EQ(sums(1, 0), 6.0f);
  EXPECT_EQ(sums(1, 1), 9.0f);
}

TEST(TensorTest, TransposeLast2) {
  Tensor a({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor t = TransposeLast2(a);
  ASSERT_EQ(t.shape(), (Shape{3, 2}));
  EXPECT_EQ(t(2, 1), 6.0f);
  Tensor b({1, 2, 2}, {1, 2, 3, 4});
  Tensor tb = TransposeLast2(b);
  EXPECT_EQ(tb(0, 0, 1), 3.0f);
}

TEST(TensorTest, AllCloseRespectsTolerance) {
  Tensor a({2}, {1.0f, 2.0f});
  Tensor b({2}, {1.0f + 1e-6f, 2.0f});
  EXPECT_TRUE(a.AllClose(b, 1e-5f));
  EXPECT_FALSE(a.AllClose(b, 1e-8f));
}

/// Property sweep: broadcasting Add equals manual loop for random shapes.
class BroadcastPropertyTest
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(BroadcastPropertyTest, AddMatchesManualBroadcast) {
  auto [b, n, h] = GetParam();
  Rng rng(static_cast<uint64_t>(b * 100 + n * 10 + h));
  Tensor x = Tensor::Randn({b, n, h}, rng);
  Tensor y = Tensor::Randn({n, h}, rng);
  Tensor z = Add(x, y);
  for (int64_t i = 0; i < b; ++i) {
    for (int64_t j = 0; j < n; ++j) {
      for (int64_t k = 0; k < h; ++k) {
        ASSERT_NEAR(z(i, j, k), x(i, j, k) + y(j, k), 1e-5);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, BroadcastPropertyTest,
    ::testing::Values(std::make_tuple(1, 1, 1), std::make_tuple(2, 3, 4),
                      std::make_tuple(5, 1, 7), std::make_tuple(3, 8, 2),
                      std::make_tuple(7, 5, 3)));

/// Property sweep: MatMul matches a naive triple loop.
class MatMulPropertyTest
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(MatMulPropertyTest, MatchesNaive) {
  auto [m, k, n] = GetParam();
  Rng rng(static_cast<uint64_t>(m * 31 + k * 7 + n));
  Tensor a = Tensor::Randn({m, k}, rng);
  Tensor b = Tensor::Randn({k, n}, rng);
  Tensor c = MatMul(a, b);
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t j = 0; j < n; ++j) {
      float expected = 0.0f;
      for (int64_t kk = 0; kk < k; ++kk) expected += a(i, kk) * b(kk, j);
      ASSERT_NEAR(c(i, j), expected, 1e-3) << i << "," << j;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, MatMulPropertyTest,
    ::testing::Values(std::make_tuple(1, 1, 1), std::make_tuple(2, 3, 4),
                      std::make_tuple(16, 8, 1), std::make_tuple(1, 64, 64),
                      std::make_tuple(33, 17, 9),
                      std::make_tuple(128, 64, 64)));

}  // namespace
}  // namespace dquag
