// Tests for the data-parallel training fast path: thread-count invariance
// of Fit (fixed shard layout + per-shard gradient sinks + fixed-order tree
// reduction), parallel-vs-serial numerical agreement, gradient correctness
// through the fused backward kernels (finite differences and sink
// redirection), and allocation stability of the training arenas after
// warm-up (the engine_test-style high-water assertion).

#include <cmath>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "autograd/grad_arena.h"
#include "autograd/ops.h"
#include "core/trainer.h"
#include "nn/losses.h"
#include "util/thread_pool.h"

namespace dquag {
namespace {

constexpr int64_t kFeatures = 6;

FeatureGraph TestGraph() {
  FeatureGraph g(kFeatures);
  g.AddUndirectedEdge(0, 1);
  g.AddUndirectedEdge(1, 2);
  g.AddUndirectedEdge(2, 3);
  g.AddUndirectedEdge(3, 4);
  g.AddUndirectedEdge(4, 5);
  g.AddUndirectedEdge(0, 5);
  return g;
}

/// GAT + GIN covers the widest op set in backward: batched matmuls,
/// gather/scatter, segment softmax, ELU and LeakyReLU.
DquagConfig TestConfig() {
  DquagConfig config;
  config.encoder.kind = EncoderKind::kGatGin;
  config.encoder.hidden_dim = 16;
  config.encoder.num_layers = 2;
  config.epochs = 3;
  config.batch_size = 128;
  return config;
}

/// Learnable structure (x1 tracks x0, x3 = 1 - x2) plus noise columns.
Tensor TestData(int64_t rows, uint64_t seed) {
  Rng rng(seed);
  Tensor data({rows, kFeatures});
  for (int64_t r = 0; r < rows; ++r) {
    const float a = static_cast<float>(rng.Uniform());
    const float b = static_cast<float>(rng.Uniform());
    data(r, 0) = a;
    data(r, 1) = a;
    data(r, 2) = b;
    data(r, 3) = 1.0f - b;
    data(r, 4) = static_cast<float>(rng.Uniform());
    data(r, 5) = static_cast<float>(rng.Uniform());
  }
  return data;
}

TrainingReport FitWithPool(ThreadPool* pool, int64_t train_shards) {
  DquagConfig config = TestConfig();
  config.train_shards = train_shards;
  Rng rng(11);
  DquagModel model(TestGraph(), config, rng);
  Trainer trainer(&model, config);
  trainer.set_thread_pool(pool);
  return trainer.Fit(TestData(320, 17));
}

// (a) Fixed seed => identical epoch losses, threshold, and calibration
// errors on 1-, 2-, and 8-thread pools. The shard layout is a function of
// the batch size only and shards reduce in a fixed order, so this holds
// exactly, not within a tolerance.
TEST(TrainerParallelTest, IdenticalResultsAcrossThreadCounts) {
  ThreadPool one(1);
  ThreadPool two(2);
  ThreadPool eight(8);
  const TrainingReport r1 = FitWithPool(&one, /*train_shards=*/8);
  const TrainingReport r2 = FitWithPool(&two, /*train_shards=*/8);
  const TrainingReport r8 = FitWithPool(&eight, /*train_shards=*/8);

  ASSERT_EQ(r1.epoch_losses.size(), r2.epoch_losses.size());
  ASSERT_EQ(r1.epoch_losses.size(), r8.epoch_losses.size());
  for (size_t e = 0; e < r1.epoch_losses.size(); ++e) {
    EXPECT_DOUBLE_EQ(r1.epoch_losses[e], r2.epoch_losses[e]) << "epoch " << e;
    EXPECT_DOUBLE_EQ(r1.epoch_losses[e], r8.epoch_losses[e]) << "epoch " << e;
  }
  EXPECT_DOUBLE_EQ(r1.error_statistics.threshold,
                   r2.error_statistics.threshold);
  EXPECT_DOUBLE_EQ(r1.error_statistics.threshold,
                   r8.error_statistics.threshold);
  ASSERT_EQ(r1.clean_errors.size(), r8.clean_errors.size());
  for (size_t i = 0; i < r1.clean_errors.size(); ++i) {
    EXPECT_DOUBLE_EQ(r1.clean_errors[i], r8.clean_errors[i]) << "row " << i;
  }
}

// Sharded training only reassociates the loss/gradient sums of the
// single-tape path; with the same seed the trajectories must stay within
// float-reassociation distance.
TEST(TrainerParallelTest, ParallelMatchesSerialPathWithin1e4) {
  const TrainingReport parallel = FitWithPool(nullptr, /*train_shards=*/8);
  const TrainingReport serial = FitWithPool(nullptr, /*train_shards=*/1);

  ASSERT_EQ(parallel.epoch_losses.size(), serial.epoch_losses.size());
  for (size_t e = 0; e < parallel.epoch_losses.size(); ++e) {
    EXPECT_NEAR(parallel.epoch_losses[e], serial.epoch_losses[e], 1e-4)
        << "epoch " << e;
  }
  EXPECT_NEAR(parallel.error_statistics.threshold,
              serial.error_statistics.threshold, 1e-4);
}

// (b) Finite-difference gradient check of the full model loss through the
// fused backward kernels (MatMulTrans*Acc, activation backward, scatter /
// gather / segment-softmax accumulation).
TEST(TrainerParallelTest, FusedBackwardMatchesFiniteDifference) {
  DquagConfig config = TestConfig();
  config.encoder.hidden_dim = 8;
  Rng rng(23);
  DquagModel model(TestGraph(), config, rng);
  Rng data_rng(29);
  const Tensor x = Tensor::RandUniform({5, kFeatures}, data_rng, 0.0f, 1.0f);

  const auto loss_value = [&]() -> double {
    NoGradGuard no_grad;
    VarPtr input = MakeVar(x);
    VarPtr target = MakeVar(x);
    DquagForward out = model.Forward(input);
    VarPtr total = ag::Add(MseLoss(out.validation, target),
                           MseLoss(out.repair, target));
    return static_cast<double>(total->value()[0]);
  };

  model.ZeroGrad();
  {
    VarPtr input = MakeVar(x);
    VarPtr target = MakeVar(x);
    DquagForward out = model.Forward(input);
    VarPtr total = ag::Add(MseLoss(out.validation, target),
                           MseLoss(out.repair, target));
    Backward(total);
  }

  const float eps = 1e-2f;
  int64_t checked = 0;
  for (const VarPtr& p : model.Parameters()) {
    ASSERT_TRUE(p->has_grad());
    // Two probes per parameter keep the test fast while touching every
    // kernel the parameter's gradient flows through.
    for (const int64_t idx : {int64_t{0}, p->value().numel() / 2}) {
      float& w = p->mutable_value()[idx];
      const float saved = w;
      w = saved + eps;
      const double f_plus = loss_value();
      w = saved - eps;
      const double f_minus = loss_value();
      w = saved;
      const double fd = (f_plus - f_minus) / (2.0 * eps);
      const double analytic = static_cast<double>(p->grad()[idx]);
      EXPECT_NEAR(analytic, fd, 3e-2 + 3e-2 * std::abs(fd))
          << "param numel " << p->value().numel() << " idx " << idx;
      ++checked;
    }
  }
  EXPECT_GT(checked, 20);
}

// Gradient-sink redirection: backward under a GradArena with registered
// sinks must produce exactly the gradients of the plain path, in the sinks,
// leaving the parameters' own gradients untouched.
TEST(TrainerParallelTest, GradSinksReceiveExactGradients) {
  DquagConfig config = TestConfig();
  Rng rng(31);
  DquagModel model(TestGraph(), config, rng);
  Rng data_rng(37);
  const Tensor x = Tensor::RandUniform({7, kFeatures}, data_rng, 0.0f, 1.0f);
  const std::vector<VarPtr> params = model.Parameters();

  const auto run_backward = [&]() {
    VarPtr input = MakeVar(x);
    VarPtr target = MakeVar(x);
    DquagForward out = model.Forward(input);
    Backward(ag::Add(MseLoss(out.validation, target),
                     MseLoss(out.repair, target)));
  };

  model.ZeroGrad();
  run_backward();  // reference gradients into the parameters

  GradArena arena;
  std::vector<Tensor> sinks;
  sinks.reserve(params.size());
  for (const VarPtr& p : params) {
    sinks.push_back(Tensor::Zeros(p->value().shape()));
  }
  for (size_t i = 0; i < params.size(); ++i) {
    arena.RegisterSink(params[i].get(), &sinks[i]);
  }
  std::vector<Tensor> reference;
  reference.reserve(params.size());
  for (const VarPtr& p : params) reference.push_back(p->grad());
  model.ZeroGrad();
  {
    GradArenaScope scope(arena);
    run_backward();
  }

  for (size_t i = 0; i < params.size(); ++i) {
    ASSERT_TRUE(arena.touched(params[i].get())) << "param " << i;
    ASSERT_EQ(sinks[i].numel(), reference[i].numel());
    for (int64_t j = 0; j < sinks[i].numel(); ++j) {
      EXPECT_EQ(sinks[i][j], reference[i][j]) << "param " << i << " el " << j;
    }
    // The parameter's own gradient stayed zeroed: everything was
    // redirected.
    for (int64_t j = 0; j < reference[i].numel(); ++j) {
      EXPECT_EQ(params[i]->grad()[j], 0.0f);
    }
  }
}

// (c) Arena high-water mark: after warm-up, further steps perform no
// payload allocations — the steady state recycles every tape buffer.
TEST(TrainerParallelTest, NoArenaAllocationsAfterWarmup) {
  for (const int64_t shards : {int64_t{8}, int64_t{1}}) {
    DquagConfig config = TestConfig();
    config.train_shards = shards;
    Rng rng(41);
    DquagModel model(TestGraph(), config, rng);
    Trainer trainer(&model, config);
    const Tensor batch = TestData(128, 43);

    trainer.Step(batch);
    trainer.Step(batch);
    const int64_t allocations = trainer.arena_allocations();
    const int64_t floats = trainer.arena_allocated_floats();
    EXPECT_GT(allocations, 0) << "shards=" << shards;

    for (int step = 0; step < 4; ++step) trainer.Step(batch);
    EXPECT_EQ(trainer.arena_allocations(), allocations)
        << "shards=" << shards;
    EXPECT_EQ(trainer.arena_allocated_floats(), floats)
        << "shards=" << shards;
  }
}

// Concurrent shard stepping on a real multi-thread pool must keep Adam's
// trajectory identical to repeated runs (smoke test that doubles as the
// ThreadSanitizer target for the trainer).
TEST(TrainerParallelTest, RepeatedParallelFitsAreIdentical) {
  ThreadPool pool(4);
  const TrainingReport a = FitWithPool(&pool, /*train_shards=*/8);
  const TrainingReport b = FitWithPool(&pool, /*train_shards=*/8);
  ASSERT_EQ(a.epoch_losses.size(), b.epoch_losses.size());
  for (size_t e = 0; e < a.epoch_losses.size(); ++e) {
    EXPECT_DOUBLE_EQ(a.epoch_losses[e], b.epoch_losses[e]);
  }
  EXPECT_DOUBLE_EQ(a.error_statistics.threshold,
                   b.error_statistics.threshold);
}

}  // namespace
}  // namespace dquag
