// Seeded-corpus fuzz of the checkpoint reader (core/serialization.cc).
//
// The hardening contract: Load never trusts a length prefix (every count is
// bounded against the bytes remaining BEFORE any allocation sized by it)
// and range-checks every config field before constructing a model, so NO
// byte-level mutation of a valid checkpoint can produce a crash, a checked
// abort, or a hostile allocation — only a Status. The corpus is a real
// checkpoint from a tiny fitted pipeline, small enough to try truncation at
// EVERY prefix length and corruption at EVERY byte. Runs in the ASan CI
// job, where an out-of-bounds read or pathological allocation faults
// instead of passing silently.

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "core/pipeline.h"
#include "data/generators.h"

namespace dquag {
namespace {

class CheckpointFuzzTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    Rng rng(5);
    Table clean = datasets::GenerateNyTaxi(64, rng, /*dims=*/5);
    DquagPipelineOptions options;
    options.config.encoder.hidden_dim = 8;
    options.config.encoder.num_layers = 2;
    options.config.epochs = 1;
    options.config.batch_size = 64;
    DquagPipeline pipeline(std::move(options));
    ASSERT_TRUE(pipeline.Fit(clean).ok());

    const std::string path = "/tmp/dquag_fuzz_corpus.bin";
    ASSERT_TRUE(pipeline.Save(path).ok());
    std::ifstream in(path, std::ios::binary);
    ASSERT_TRUE(in.good());
    std::ostringstream buf;
    buf << in.rdbuf();
    corpus_ = new std::string(buf.str());
    std::remove(path.c_str());
    ASSERT_FALSE(corpus_->empty());
  }
  static void TearDownTestSuite() {
    delete corpus_;
    corpus_ = nullptr;
  }

  /// Writes `bytes` to a scratch file and returns Load's status.
  static Status TryLoad(const std::string& bytes) {
    const std::string path = "/tmp/dquag_fuzz_case.bin";
    {
      std::ofstream out(path, std::ios::binary | std::ios::trunc);
      out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    }
    auto loaded = DquagPipeline::Load(path);
    std::remove(path.c_str());
    return loaded.ok() ? Status::Ok() : loaded.status();
  }

  static std::string* corpus_;
};

std::string* CheckpointFuzzTest::corpus_ = nullptr;

TEST_F(CheckpointFuzzTest, IntactCorpusLoads) {
  EXPECT_TRUE(TryLoad(*corpus_).ok());
}

// Every possible truncation point. Each must come back as a Status; a
// crash, abort, or ASan fault here means a reader consumed a length it
// never had. Two prefix lengths are special: cutting exactly at the start
// of an optional trailing section (quantized weights, drift profile)
// yields a well-formed older-format checkpoint, which loads by design.
TEST_F(CheckpointFuzzTest, TruncationAtEveryPrefixFailsCleanly) {
  // The optional-section magics as little-endian file bytes, in the order
  // Save writes them (quantized weights, then the drift profile).
  const std::string quant_magic("\x01\x00\x00\x00\x44\x51\x51\x38", 8);
  const std::string drift_magic("\x01\x00\x00\x00\x44\x51\x44\x50", 8);
  const size_t quant_len = corpus_->rfind(quant_magic);
  const size_t drift_len = corpus_->rfind(drift_magic);
  ASSERT_NE(quant_len, std::string::npos);
  ASSERT_NE(drift_len, std::string::npos);
  ASSERT_LT(quant_len, drift_len);
  for (size_t len = 0; len < corpus_->size(); ++len) {
    const Status status = TryLoad(corpus_->substr(0, len));
    if (len == quant_len || len == drift_len) {
      EXPECT_TRUE(status.ok()) << "older-format prefix must load";
    } else {
      EXPECT_FALSE(status.ok()) << "truncated to " << len << " of "
                                << corpus_->size() << " bytes loaded anyway";
    }
  }
}

// Every single-byte corruption. Most mutations must fail with a Status;
// some (e.g. a low mantissa bit of a weight) legitimately still load —
// the invariant under test is only "never crash, never hostile-allocate".
TEST_F(CheckpointFuzzTest, CorruptionAtEveryByteNeverCrashes) {
  std::string bytes = *corpus_;
  for (size_t i = 0; i < bytes.size(); ++i) {
    const char original = bytes[i];
    bytes[i] = static_cast<char>(bytes[i] ^ 0xFF);
    (void)TryLoad(bytes);  // any Status is fine; surviving the call is the test
    bytes[i] = original;
  }
}

// A few targeted hostile payloads on top of the blind sweep: absurd counts
// spliced into the header region must be rejected before any allocation.
TEST_F(CheckpointFuzzTest, HostileLengthPrefixesRejected) {
  for (size_t offset : {size_t{8}, size_t{16}, size_t{24}, size_t{40}}) {
    ASSERT_LT(offset + 8, corpus_->size());
    std::string bytes = *corpus_;
    for (size_t b = 0; b < 8; ++b) bytes[offset + b] = '\xFF';
    const Status status = TryLoad(bytes);
    EXPECT_FALSE(status.ok()) << "offset " << offset;
  }
}

}  // namespace
}  // namespace dquag
