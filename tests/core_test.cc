// Tests for the core DQuaG components: model shapes, trainer behaviour,
// error statistics, validator rules, repairer semantics, and config knobs.

#include <cmath>

#include <gtest/gtest.h>

#include "core/pipeline.h"
#include "data/error_injector.h"
#include "data/generators.h"

namespace dquag {
namespace {

FeatureGraph SmallGraph() {
  FeatureGraph g(4);
  g.AddUndirectedEdge(0, 1);
  g.AddUndirectedEdge(1, 2);
  g.AddUndirectedEdge(2, 3);
  return g;
}

DquagConfig SmallConfig() {
  DquagConfig config;
  config.encoder.hidden_dim = 16;
  config.encoder.num_layers = 2;
  config.epochs = 8;
  config.batch_size = 64;
  return config;
}

// ---- Model ---------------------------------------------------------------------

TEST(DquagModelTest, ForwardShapes) {
  Rng rng(1);
  DquagConfig config = SmallConfig();
  DquagModel model(SmallGraph(), config, rng);
  VarPtr x = MakeVar(Tensor::RandUniform({10, 4}, rng, 0.0f, 1.0f));
  DquagForward out = model.Forward(x);
  EXPECT_EQ(out.validation->value().shape(), (Shape{10, 4}));
  EXPECT_EQ(out.repair->value().shape(), (Shape{10, 4}));
  EXPECT_EQ(out.embeddings->value().shape(), (Shape{10, 4, 16}));
}

TEST(DquagModelTest, DualDecodersAreIndependent) {
  Rng rng(2);
  DquagConfig config = SmallConfig();
  DquagModel model(SmallGraph(), config, rng);
  VarPtr x = MakeVar(Tensor::RandUniform({5, 4}, rng, 0.0f, 1.0f));
  DquagForward out = model.Forward(x);
  // Freshly initialized decoders have different weights -> different
  // outputs from the same embedding.
  EXPECT_FALSE(
      out.validation->value().AllClose(out.repair->value(), 1e-6f));
}

TEST(DquagModelTest, InferencePathsMatchForwardValues) {
  Rng rng(3);
  DquagConfig config = SmallConfig();
  DquagModel model(SmallGraph(), config, rng);
  Tensor x = Tensor::RandUniform({6, 4}, rng, 0.0f, 1.0f);
  DquagForward out = model.Forward(MakeVar(x));
  EXPECT_TRUE(
      model.ReconstructValidation(x).AllClose(out.validation->value(),
                                              1e-5f));
  EXPECT_TRUE(
      model.ReconstructRepair(x).AllClose(out.repair->value(), 1e-5f));
}

TEST(DquagModelTest, SharedEncoderParameterCount) {
  Rng rng(4);
  DquagConfig config = SmallConfig();
  DquagModel model(SmallGraph(), config, rng);
  // tokenizer + encoder + 2 decoders all registered.
  EXPECT_GT(model.NumParameters(), 0);
  EXPECT_GT(model.Parameters().size(), 8u);
}

// ---- Error statistics -----------------------------------------------------------

TEST(ErrorStatsTest, PercentileInterpolates) {
  std::vector<double> values = {1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(Percentile(values, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(Percentile(values, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(Percentile(values, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(Percentile(values, 0.25), 2.0);
  EXPECT_DOUBLE_EQ(Percentile({7.0}, 0.95), 7.0);
}

TEST(ErrorStatsTest, FromErrorsSummaries) {
  std::vector<double> errors = {0.1, 0.2, 0.3, 0.4, 10.0};
  ErrorStatistics stats = ErrorStatistics::FromErrors(errors, 0.95);
  EXPECT_DOUBLE_EQ(stats.min, 0.1);
  EXPECT_DOUBLE_EQ(stats.max, 10.0);
  EXPECT_NEAR(stats.mean, 2.2, 1e-9);
  EXPECT_GT(stats.threshold, 0.4);   // 95th percentile sits near the top
  EXPECT_LT(stats.threshold, 10.0);  // but below the max (paper §3.1.4)
}

// ---- Trainer --------------------------------------------------------------------

TEST(TrainerTest, LossDecreases) {
  Rng rng(5);
  DquagConfig config = SmallConfig();
  config.epochs = 12;
  DquagModel model(SmallGraph(), config, rng);
  Trainer trainer(&model, config);
  // Learnable structure: x1 = x0, x3 = 1 - x2.
  Tensor data({256, 4});
  Rng data_rng(6);
  for (int64_t r = 0; r < 256; ++r) {
    const float a = static_cast<float>(data_rng.Uniform());
    const float b = static_cast<float>(data_rng.Uniform());
    data(r, 0) = a;
    data(r, 1) = a;
    data(r, 2) = b;
    data(r, 3) = 1.0f - b;
  }
  TrainingReport report = trainer.Fit(data);
  ASSERT_EQ(report.epochs_run, 12);
  EXPECT_LT(report.epoch_losses.back(), report.epoch_losses.front() * 0.8);
  EXPECT_GT(report.error_statistics.threshold, 0.0);
  EXPECT_FALSE(report.clean_errors.empty());
}

TEST(TrainerTest, ThresholdNearConfiguredPercentile) {
  Rng rng(7);
  DquagConfig config = SmallConfig();
  DquagModel model(SmallGraph(), config, rng);
  Trainer trainer(&model, config);
  Tensor data = Tensor::RandUniform({300, 4}, rng, 0.0f, 1.0f);
  TrainingReport report = trainer.Fit(data);
  // About 5% of calibration errors should exceed the 95th percentile.
  int64_t above = 0;
  for (double e : report.clean_errors) {
    if (e > report.error_statistics.threshold) ++above;
  }
  const double fraction =
      static_cast<double>(above) /
      static_cast<double>(report.clean_errors.size());
  EXPECT_NEAR(fraction, 0.05, 0.03);
}

// ---- Validator -----------------------------------------------------------------

TEST(ValidatorTest, BatchRuleUsesMultiplier) {
  Rng rng(8);
  DquagConfig config = SmallConfig();
  DquagModel model(SmallGraph(), config, rng);
  Validator validator(&model, nullptr, /*threshold=*/0.5, config);
  // cutoff = (1 - 0.95) * 1.2 = 6%.
  EXPECT_NEAR(validator.batch_cutoff(), 0.06, 1e-9);
}

TEST(ValidatorTest, FlagsInstancesAboveThreshold) {
  Rng rng(9);
  DquagConfig config = SmallConfig();
  config.epochs = 10;
  DquagModel model(SmallGraph(), config, rng);
  Trainer trainer(&model, config);
  Tensor data = Tensor::RandUniform({300, 4}, rng, 0.3f, 0.7f);
  TrainingReport report = trainer.Fit(data);
  Validator validator(&model, nullptr, report.error_statistics.threshold,
                      config);
  // A matrix with obviously out-of-range cells must flag those rows.
  Tensor probe = Tensor::RandUniform({50, 4}, rng, 0.3f, 0.7f);
  for (int64_t r = 0; r < 20; ++r) probe(r, 2) = 5.0f;
  BatchVerdict verdict = validator.ValidateMatrix(probe);
  int64_t corrupted_flagged = 0;
  for (size_t row : verdict.flagged_rows) {
    if (row < 20) ++corrupted_flagged;
  }
  EXPECT_GE(corrupted_flagged, 18);
  EXPECT_TRUE(verdict.is_dirty);
}

TEST(ValidatorTest, SuspectFeaturesPointAtCorruptedColumn) {
  Rng rng(10);
  DquagConfig config = SmallConfig();
  config.epochs = 10;
  DquagModel model(SmallGraph(), config, rng);
  Trainer trainer(&model, config);
  Tensor data = Tensor::RandUniform({300, 4}, rng, 0.3f, 0.7f);
  TrainingReport report = trainer.Fit(data);
  Validator validator(&model, nullptr, report.error_statistics.threshold,
                      config);
  Tensor probe = Tensor::RandUniform({20, 4}, rng, 0.3f, 0.7f);
  for (int64_t r = 0; r < 20; ++r) probe(r, 1) = 6.0f;
  BatchVerdict verdict = validator.ValidateMatrix(probe);
  int64_t column1_blamed = 0;
  for (size_t row : verdict.flagged_rows) {
    for (int64_t c : verdict.instances[row].suspect_features) {
      if (c == 1) ++column1_blamed;
    }
  }
  EXPECT_GT(column1_blamed, 0);
}

TEST(ValidatorTest, EmptyAndChunkedValidationAgree) {
  Rng rng(11);
  DquagConfig config = SmallConfig();
  DquagModel model(SmallGraph(), config, rng);
  Validator validator(&model, nullptr, 0.5, config);
  Tensor probe = Tensor::RandUniform({100, 4}, rng, 0.0f, 1.0f);
  BatchVerdict one = validator.ValidateMatrix(probe);
  DquagConfig chunked = config;
  chunked.inference_chunk_rows = 7;  // force many chunks
  Validator validator2(&model, nullptr, 0.5, chunked);
  BatchVerdict two = validator2.ValidateMatrix(probe);
  ASSERT_EQ(one.instances.size(), two.instances.size());
  for (size_t i = 0; i < one.instances.size(); ++i) {
    EXPECT_NEAR(one.instances[i].error, two.instances[i].error, 1e-6);
  }
}

// ---- Repairer ------------------------------------------------------------------

TEST(RepairerTest, OnlyFlaggedCellsChange) {
  Rng rng(12);
  DquagConfig config = SmallConfig();
  config.epochs = 10;
  DquagModel model(SmallGraph(), config, rng);
  Trainer trainer(&model, config);
  Tensor data = Tensor::RandUniform({300, 4}, rng, 0.3f, 0.7f);
  TrainingReport report = trainer.Fit(data);
  Validator validator(&model, nullptr, report.error_statistics.threshold,
                      config);
  Repairer repairer(&model, nullptr, config);

  Tensor probe = Tensor::RandUniform({30, 4}, rng, 0.3f, 0.7f);
  for (int64_t r = 0; r < 10; ++r) probe(r, 3) = 4.0f;
  BatchVerdict verdict = validator.ValidateMatrix(probe);
  int64_t cells = 0;
  Tensor repaired = repairer.RepairMatrix(probe, verdict, &cells);
  EXPECT_GT(cells, 0);
  // Unflagged cells identical.
  for (int64_t r = 0; r < 30; ++r) {
    const InstanceVerdict& inst = verdict.instances[static_cast<size_t>(r)];
    for (int64_t c = 0; c < 4; ++c) {
      const bool repaired_cell =
          inst.flagged &&
          std::find(inst.suspect_features.begin(),
                    inst.suspect_features.end(),
                    c) != inst.suspect_features.end();
      if (!repaired_cell) {
        EXPECT_FLOAT_EQ(repaired(r, c), probe(r, c));
      }
    }
  }
}

TEST(RepairerTest, RepairMovesCellsTowardCleanRange) {
  Rng rng(13);
  DquagConfig config = SmallConfig();
  config.epochs = 12;
  DquagModel model(SmallGraph(), config, rng);
  Trainer trainer(&model, config);
  Tensor data = Tensor::RandUniform({400, 4}, rng, 0.3f, 0.7f);
  TrainingReport report = trainer.Fit(data);
  Validator validator(&model, nullptr, report.error_statistics.threshold,
                      config);
  Repairer repairer(&model, nullptr, config);

  Tensor probe = Tensor::RandUniform({40, 4}, rng, 0.3f, 0.7f);
  for (int64_t r = 0; r < 15; ++r) probe(r, 0) = 5.0f;
  BatchVerdict verdict = validator.ValidateMatrix(probe);
  Tensor repaired = repairer.RepairMatrix(probe, verdict, nullptr);
  for (int64_t r = 0; r < 15; ++r) {
    if (!verdict.instances[static_cast<size_t>(r)].flagged) continue;
    // If the anomalous cell was blamed, the repair should pull it toward
    // the clean band.
    const auto& sus =
        verdict.instances[static_cast<size_t>(r)].suspect_features;
    if (std::find(sus.begin(), sus.end(), 0) != sus.end()) {
      EXPECT_LT(std::abs(repaired(r, 0) - 0.5f),
                std::abs(probe(r, 0) - 0.5f));
    }
  }
}

// ---- Pipeline ------------------------------------------------------------------

TEST(PipelineTest, FitValidateRepairEndToEnd) {
  Rng rng(14);
  Table clean = datasets::GenerateCreditCard(1200, rng);
  DquagPipelineOptions options;
  options.config = SmallConfig();
  options.config.epochs = 10;
  DquagPipeline pipeline(std::move(options));
  ASSERT_TRUE(pipeline.Fit(clean).ok());
  EXPECT_TRUE(pipeline.fitted());
  EXPECT_GT(pipeline.threshold(), 0.0);
  EXPECT_FALSE(pipeline.relationships().empty());

  ErrorInjector injector(15);
  Table dirty =
      injector.InjectNumericAnomalies(clean, {"AMT_INCOME_TOTAL"}, 0.2)
          .table;
  BatchVerdict verdict = pipeline.Validate(dirty);
  EXPECT_TRUE(verdict.is_dirty);
  RepairResult repair = pipeline.Repair(dirty, verdict);
  EXPECT_GT(repair.cells_repaired, 0);
}

TEST(PipelineTest, FitTwiceIsError) {
  Rng rng(16);
  Table clean = datasets::GenerateCreditCard(300, rng);
  DquagPipelineOptions options;
  options.config = SmallConfig();
  options.config.epochs = 2;
  DquagPipeline pipeline(std::move(options));
  ASSERT_TRUE(pipeline.Fit(clean).ok());
  EXPECT_EQ(pipeline.Fit(clean).code(), StatusCode::kFailedPrecondition);
}

TEST(PipelineTest, EmptyCleanIsError) {
  DquagPipeline pipeline;
  Table empty(datasets::CreditCardSchema());
  EXPECT_EQ(pipeline.Fit(empty).code(), StatusCode::kInvalidArgument);
}

TEST(PipelineTest, ExternalRelationshipsBypassMining) {
  Rng rng(17);
  Table clean = datasets::GenerateCreditCard(400, rng);
  DquagPipelineOptions options;
  options.config = SmallConfig();
  options.config.epochs = 2;
  options.relationships = std::vector<FeatureRelationship>{
      {"DAYS_BIRTH", "DAYS_EMPLOYED", 1.0, "external"}};
  DquagPipeline pipeline(std::move(options));
  ASSERT_TRUE(pipeline.Fit(clean).ok());
  EXPECT_EQ(pipeline.relationships().size(), 1u);
  EXPECT_EQ(pipeline.relationships()[0].kind, "external");
}

TEST(PipelineTest, UnknownRelationshipNameFailsCleanly) {
  Rng rng(18);
  Table clean = datasets::GenerateCreditCard(200, rng);
  DquagPipelineOptions options;
  options.config = SmallConfig();
  options.relationships =
      std::vector<FeatureRelationship>{{"NOT_A_COLUMN", "DAYS_BIRTH"}};
  DquagPipeline pipeline(std::move(options));
  EXPECT_EQ(pipeline.Fit(clean).code(), StatusCode::kNotFound);
}

TEST(ConfigTest, AblationSwitchDisablesWeighting) {
  // Both configurations must train without error; the ablation bench
  // compares their detection quality.
  Rng rng(19);
  Table clean = datasets::GenerateCreditCard(400, rng);
  for (bool disable : {false, true}) {
    DquagPipelineOptions options;
    options.config = SmallConfig();
    options.config.epochs = 2;
    options.config.disable_loss_weighting = disable;
    DquagPipeline pipeline(std::move(options));
    EXPECT_TRUE(pipeline.Fit(clean).ok());
  }
}

}  // namespace
}  // namespace dquag
