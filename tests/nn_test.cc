// Tests for the nn module: Linear/MLP shapes and gradients, the feature
// tokenizer, Adam convergence, losses, initializers.

#include <cmath>

#include <gtest/gtest.h>

#include "autograd/ops.h"
#include "nn/adam.h"
#include "nn/feature_tokenizer.h"
#include "nn/init.h"
#include "nn/linear.h"
#include "nn/losses.h"

namespace dquag {
namespace {

TEST(LinearTest, ShapesAndBias) {
  Rng rng(1);
  Linear layer(4, 3, rng);
  VarPtr x = MakeVar(Tensor::Randn({5, 4}, rng));
  VarPtr y = layer.Forward(x);
  EXPECT_EQ(y->value().shape(), (Shape{5, 3}));
  VarPtr x3 = MakeVar(Tensor::Randn({2, 5, 4}, rng));
  EXPECT_EQ(layer.Forward(x3)->value().shape(), (Shape{2, 5, 3}));
}

TEST(LinearTest, NoBiasVariant) {
  Rng rng(2);
  Linear layer(3, 2, rng, /*with_bias=*/false);
  EXPECT_EQ(layer.Parameters().size(), 1u);
  VarPtr zero = MakeVar(Tensor::Zeros({1, 3}));
  EXPECT_TRUE(layer.Forward(zero)->value().AllClose(Tensor::Zeros({1, 2})));
}

TEST(LinearTest, ParameterCount) {
  Rng rng(3);
  Linear layer(4, 3, rng);
  EXPECT_EQ(layer.NumParameters(), 4 * 3 + 3);
}

TEST(MlpTest, StackAppliesActivationBetweenLayers) {
  Rng rng(4);
  Mlp mlp({4, 8, 2}, Activation::kRelu, rng);
  VarPtr x = MakeVar(Tensor::Randn({3, 4}, rng));
  EXPECT_EQ(mlp.Forward(x)->value().shape(), (Shape{3, 2}));
  EXPECT_EQ(mlp.Parameters().size(), 4u);  // two layers x (W, b)
}

TEST(FeatureTokenizerTest, PerFeatureAffine) {
  Rng rng(5);
  FeatureTokenizer tok(3, 4, rng);
  Tensor x({2, 3}, {1, 2, 3, 4, 5, 6});
  VarPtr h = tok.Forward(MakeVar(x));
  ASSERT_EQ(h->value().shape(), (Shape{2, 3, 4}));
  // h[b, f, k] must be linear in x[b, f]: h(2x) - h(x) == h(x) - h(0).
  Tensor zeros = Tensor::Zeros({2, 3});
  Tensor h0 = tok.Forward(MakeVar(zeros))->value();
  Tensor hx = h->value();
  Tensor h2 = tok.Forward(MakeVar(MulScalar(x, 2.0f)))->value();
  EXPECT_TRUE(Sub(h2, hx).AllClose(Sub(hx, h0), 1e-4f));
}

TEST(FeatureTokenizerTest, ColumnsDoNotMix) {
  Rng rng(6);
  FeatureTokenizer tok(2, 3, rng);
  Tensor a({1, 2}, {1.0f, 0.0f});
  Tensor b({1, 2}, {1.0f, 9.0f});
  Tensor ha = tok.Forward(MakeVar(a))->value();
  Tensor hb = tok.Forward(MakeVar(b))->value();
  // Changing column 1 must not change column 0's embedding.
  for (int64_t k = 0; k < 3; ++k) {
    EXPECT_FLOAT_EQ(ha(0, 0, k), hb(0, 0, k));
  }
}

TEST(AdamTest, ConvergesOnLeastSquares) {
  // Fit y = 2x + 1 with a 1-d linear model.
  Rng rng(7);
  VarPtr w = MakeVar(Tensor::Scalar(0.0f), true);
  VarPtr b = MakeVar(Tensor::Scalar(0.0f), true);
  Adam adam({w, b}, AdamOptions{.learning_rate = 0.05f});
  Tensor xs({16});
  Tensor ys({16});
  for (int64_t i = 0; i < 16; ++i) {
    xs[i] = static_cast<float>(i) / 8.0f - 1.0f;
    ys[i] = 2.0f * xs[i] + 1.0f;
  }
  for (int step = 0; step < 400; ++step) {
    VarPtr pred = ag::Add(ag::Mul(MakeVar(xs), w), b);
    VarPtr loss = ag::MeanAll(ag::Square(ag::Sub(pred, MakeVar(ys))));
    adam.ZeroGrad();
    Backward(loss);
    adam.Step();
  }
  EXPECT_NEAR(w->value()[0], 2.0f, 0.05f);
  EXPECT_NEAR(b->value()[0], 1.0f, 0.05f);
}

TEST(AdamTest, StepCountAndZeroGrad) {
  VarPtr w = MakeVar(Tensor::Scalar(1.0f), true);
  Adam adam({w});
  EXPECT_EQ(adam.step_count(), 0);
  Backward(ag::SumAll(ag::Square(w)));
  adam.Step();
  EXPECT_EQ(adam.step_count(), 1);
  adam.ZeroGrad();
  EXPECT_FLOAT_EQ(w->grad()[0], 0.0f);
}

TEST(AdamTest, WeightDecayShrinksWeights) {
  VarPtr w = MakeVar(Tensor::Scalar(5.0f), true);
  Adam adam({w}, AdamOptions{.learning_rate = 0.1f, .weight_decay = 1.0f});
  for (int i = 0; i < 50; ++i) {
    adam.ZeroGrad();
    w->grad();  // zero gradient; only decay acts
    adam.Step();
  }
  EXPECT_LT(std::abs(w->value()[0]), 5.0f);
}

TEST(LossTest, MseLossValue) {
  VarPtr pred = MakeVar(Tensor({1, 2}, {1.0f, 3.0f}));
  VarPtr target = MakeVar(Tensor({1, 2}, {0.0f, 1.0f}));
  EXPECT_FLOAT_EQ(MseLoss(pred, target)->value()[0], (1.0f + 4.0f) / 2.0f);
}

TEST(LossTest, WeightedMseRespectsWeights) {
  // Two samples with per-sample errors 1 and 4.
  VarPtr pred = MakeVar(Tensor({2, 1}, {1.0f, 2.0f}));
  VarPtr target = MakeVar(Tensor({2, 1}, {0.0f, 0.0f}));
  Tensor uniform({2}, {1.0f, 1.0f});
  EXPECT_FLOAT_EQ(WeightedMseLoss(pred, target, uniform)->value()[0], 2.5f);
  Tensor skewed({2}, {2.0f, 0.0f});
  EXPECT_FLOAT_EQ(WeightedMseLoss(pred, target, skewed)->value()[0], 1.0f);
}

TEST(LossTest, PerSampleAndPerFeatureErrors) {
  Tensor pred({2, 2}, {1, 1, 3, 3});
  Tensor target({2, 2}, {0, 0, 0, 0});
  Tensor per_sample = PerSampleErrors(pred, target);
  EXPECT_FLOAT_EQ(per_sample[0], 1.0f);
  EXPECT_FLOAT_EQ(per_sample[1], 9.0f);
  Tensor per_feature = PerFeatureErrors(pred, target);
  EXPECT_FLOAT_EQ(per_feature(1, 1), 9.0f);
}

TEST(LossTest, ErrorsToWeightsFavoursSmallErrors) {
  Tensor errors({3}, {0.01f, 0.01f, 10.0f});
  Tensor weights = ErrorsToWeights(errors);
  EXPECT_GT(weights[0], weights[2]);
  // Weights average to 1.
  EXPECT_NEAR((weights[0] + weights[1] + weights[2]) / 3.0f, 1.0f, 1e-4f);
}

TEST(InitTest, XavierUniformBounds) {
  Rng rng(8);
  Tensor w = XavierUniform(100, 50, rng);
  const float limit = std::sqrt(6.0f / 150.0f);
  EXPECT_LE(MaxAll(w), limit);
  EXPECT_GE(MinAll(w), -limit);
  // Not degenerate.
  EXPECT_GT(MaxAll(Abs(w)), limit * 0.5f);
}

TEST(InitTest, HeNormalVariance) {
  Rng rng(9);
  Tensor w = HeNormal(256, 64, rng);
  const float mean = MeanAll(w);
  float var = 0.0f;
  for (int64_t i = 0; i < w.numel(); ++i) {
    var += (w[i] - mean) * (w[i] - mean);
  }
  var /= static_cast<float>(w.numel());
  EXPECT_NEAR(var, 2.0f / 256.0f, 2e-3f);
}

TEST(ModuleTest, CopyParametersFrom) {
  Rng rng1(10), rng2(11);
  Linear a(3, 2, rng1), b(3, 2, rng2);
  EXPECT_FALSE(
      a.Parameters()[0]->value().AllClose(b.Parameters()[0]->value()));
  b.CopyParametersFrom(a);
  EXPECT_TRUE(
      a.Parameters()[0]->value().AllClose(b.Parameters()[0]->value()));
}

TEST(ModuleTest, ApplyActivationDispatch) {
  VarPtr x = MakeVar(Tensor({2}, {-1.0f, 1.0f}));
  EXPECT_FLOAT_EQ(ApplyActivation(x, Activation::kIdentity)->value()[0],
                  -1.0f);
  EXPECT_FLOAT_EQ(ApplyActivation(x, Activation::kRelu)->value()[0], 0.0f);
  EXPECT_NEAR(ApplyActivation(x, Activation::kSigmoid)->value()[1],
              1.0f / (1.0f + std::exp(-1.0f)), 1e-5f);
}

}  // namespace
}  // namespace dquag
