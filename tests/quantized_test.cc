// Verdict-equivalence suite for the int8 quantized inference path.
//
// The quantization contract (core/validator.h ValidationMode): quantized
// validation may flip at most a sliver of verdicts versus the float path on
// dirty data, and none at all on clean data, because every row whose error
// lands inside the margin band around the threshold is re-checked on the
// authoritative float path. Checkpoints capture the int8 weights at save
// time; loading them must serve bit-identically to deriving them in
// memory, and checkpoints from before the section existed must still load
// and quantize identically (lazy derivation is deterministic).

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/validation_service.h"
#include "data/error_injector.h"
#include "data/generators.h"

namespace dquag {
namespace {

struct GeneratorCase {
  const char* name;
  Table (*clean)(int64_t rows, Rng& rng);
  Table (*fresh)(int64_t rows, Rng& rng);
};

Table TaxiClean(int64_t rows, Rng& rng) {
  return datasets::GenerateNyTaxi(rows, rng);
}
Table HotelFresh(int64_t rows, Rng& rng) {
  Table clean = datasets::GenerateHotelBooking(rows, rng);
  ErrorInjector injector(29);
  return injector.InjectHotelGroupConflict(clean, 0.2).table;
}
Table CreditFresh(int64_t rows, Rng& rng) {
  Table clean = datasets::GenerateCreditCard(rows, rng);
  ErrorInjector injector(31);
  return injector.InjectMissing(clean, {"AMT_INCOME_TOTAL"}, 0.2).table;
}
Table TaxiFresh(int64_t rows, Rng& rng) {
  Table clean = datasets::GenerateNyTaxi(rows, rng);
  ErrorInjector injector(37);
  return injector.InjectNumericAnomalies(clean, {"fare_amount"}, 0.2).table;
}
Table AirbnbFresh(int64_t rows, Rng& rng) {
  return datasets::GenerateAirbnbDirty(rows, rng);
}
Table BicycleFresh(int64_t rows, Rng& rng) {
  return datasets::GenerateBicycleDirty(rows, rng);
}
Table GooglePlayFresh(int64_t rows, Rng& rng) {
  return datasets::GenerateGooglePlayDirty(rows, rng);
}

/// Rows whose flagged bit differs between two verdicts of the same batch.
int64_t CountFlips(const BatchVerdict& a, const BatchVerdict& b) {
  EXPECT_EQ(a.instances.size(), b.instances.size());
  int64_t flips = 0;
  for (size_t r = 0; r < a.instances.size(); ++r) {
    if (a.instances[r].flagged != b.instances[r].flagged) ++flips;
  }
  return flips;
}

void ExpectVerdictsIdentical(const BatchVerdict& a, const BatchVerdict& b) {
  ASSERT_EQ(a.instances.size(), b.instances.size());
  for (size_t r = 0; r < a.instances.size(); ++r) {
    EXPECT_EQ(a.instances[r].error, b.instances[r].error) << "row " << r;
    EXPECT_EQ(a.instances[r].flagged, b.instances[r].flagged) << "row " << r;
    EXPECT_EQ(a.instances[r].suspect_features, b.instances[r].suspect_features)
        << "row " << r;
  }
  EXPECT_EQ(a.flagged_rows, b.flagged_rows);
  EXPECT_EQ(a.flagged_fraction, b.flagged_fraction);
  EXPECT_EQ(a.is_dirty, b.is_dirty);
  EXPECT_EQ(a.threshold, b.threshold);
}

class QuantizedGeneratorTest : public ::testing::TestWithParam<GeneratorCase> {
};

// Dirty data: at most 0.5% of verdicts may flip (rows whose quantization
// noise exceeds a quarter of the threshold). Clean data: zero flips — every
// clean row sits far below the margin band's lower edge or inside it, where
// the float path decides.
TEST_P(QuantizedGeneratorTest, QuantizedVerdictsMatchFloat) {
  const GeneratorCase& item = GetParam();
  Rng rng(23);
  Table clean = item.clean(140, rng);
  DquagPipelineOptions options;
  options.config.encoder.hidden_dim = 8;
  options.config.epochs = 1;
  options.config.batch_size = 64;
  DquagPipeline pipeline(std::move(options));
  ASSERT_TRUE(pipeline.Fit(clean).ok());
  const ValidationMode quantized{/*quantized=*/true, /*recheck_margin=*/0.25};

  const Table fresh = item.fresh(400, rng);
  const BatchVerdict flt = pipeline.Validate(fresh);
  const BatchVerdict qnt = pipeline.validator().Validate(fresh, quantized);
  const int64_t flips = CountFlips(flt, qnt);
  EXPECT_LE(flips, fresh.num_rows() / 200)  // 0.5%
      << item.name << ": " << flips << " verdict flips on " << fresh.num_rows()
      << " dirty rows";

  const Table clean_eval = item.clean(200, rng);
  const BatchVerdict clean_flt = pipeline.Validate(clean_eval);
  const BatchVerdict clean_qnt =
      pipeline.validator().Validate(clean_eval, quantized);
  EXPECT_EQ(0, CountFlips(clean_flt, clean_qnt))
      << item.name << ": quantized flips on clean data";
  EXPECT_EQ(clean_flt.is_dirty, clean_qnt.is_dirty) << item.name;
}

INSTANTIATE_TEST_SUITE_P(
    AllGenerators, QuantizedGeneratorTest,
    ::testing::Values(
        GeneratorCase{"taxi", TaxiClean, TaxiFresh},
        GeneratorCase{"hotel", datasets::GenerateHotelBooking, HotelFresh},
        GeneratorCase{"credit", datasets::GenerateCreditCard, CreditFresh},
        GeneratorCase{"airbnb", datasets::GenerateAirbnbClean, AirbnbFresh},
        GeneratorCase{"bicycle", datasets::GenerateBicycleClean,
                      BicycleFresh},
        GeneratorCase{"googleplay", datasets::GenerateGooglePlayClean,
                      GooglePlayFresh}),
    [](const ::testing::TestParamInfo<GeneratorCase>& info) {
      return std::string(info.param.name);
    });

// ---- Checkpoint interactions ----------------------------------------------

class QuantizedCheckpointTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    Rng rng(7);
    Table clean = datasets::GenerateNyTaxi(160, rng, /*dims=*/10);
    DquagPipelineOptions options;
    options.config.encoder.hidden_dim = 16;
    options.config.epochs = 2;
    options.config.batch_size = 64;
    pipeline_ = new DquagPipeline(std::move(options));
    ASSERT_TRUE(pipeline_->Fit(clean).ok());
    ErrorInjector injector(12);
    Table fresh = datasets::GenerateNyTaxi(300, rng, /*dims=*/10);
    fresh_ = new Table(
        injector.InjectNumericAnomalies(fresh, {"fare_amount"}, 0.15).table);
  }
  static void TearDownTestSuite() {
    delete pipeline_;
    pipeline_ = nullptr;
    delete fresh_;
    fresh_ = nullptr;
  }

  static DquagPipeline* pipeline_;
  static Table* fresh_;
};

DquagPipeline* QuantizedCheckpointTest::pipeline_ = nullptr;
Table* QuantizedCheckpointTest::fresh_ = nullptr;

// The int8 weights stored at save time serve bit-identically to the ones
// derived in memory from the float weights.
TEST_F(QuantizedCheckpointTest, StoredWeightsMatchDerived) {
  const std::string path = "/tmp/dquag_quantized_roundtrip.bin";
  ASSERT_TRUE(pipeline_->Save(path).ok());
  auto loaded = DquagPipeline::Load(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();

  const ValidationMode quantized{true, 0.25};
  const BatchVerdict in_memory =
      pipeline_->validator().Validate(*fresh_, quantized);
  const BatchVerdict from_disk =
      loaded->validator().Validate(*fresh_, quantized);
  ExpectVerdictsIdentical(in_memory, from_disk);
  std::remove(path.c_str());
}

// A checkpoint with the quantized section stripped (the pre-section format)
// still loads, and lazy derivation reproduces the stored weights exactly.
TEST_F(QuantizedCheckpointTest, LegacyCheckpointWithoutSectionLoads) {
  const std::string path = "/tmp/dquag_quantized_full.bin";
  const std::string legacy_path = "/tmp/dquag_quantized_legacy.bin";
  ASSERT_TRUE(pipeline_->Save(path).ok());

  std::string bytes;
  {
    std::ifstream in(path, std::ios::binary);
    ASSERT_TRUE(in.good());
    std::ostringstream buf;
    buf << in.rdbuf();
    bytes = buf.str();
  }
  // kQuantSectionMagic ("DQQ8" + version 1) as little-endian file bytes.
  // The section is the last thing Save writes, so the last occurrence is
  // its start.
  const std::string magic("\x01\x00\x00\x00\x44\x51\x51\x38", 8);
  const size_t pos = bytes.rfind(magic);
  ASSERT_NE(pos, std::string::npos);
  ASSERT_GT(pos, 0u);
  {
    std::ofstream out(legacy_path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(pos));
    ASSERT_TRUE(out.good());
  }

  auto full = DquagPipeline::Load(path);
  ASSERT_TRUE(full.ok()) << full.status().ToString();
  auto legacy = DquagPipeline::Load(legacy_path);
  ASSERT_TRUE(legacy.ok()) << legacy.status().ToString();

  // Float path is untouched by the section either way...
  ExpectVerdictsIdentical(full->Validate(*fresh_), legacy->Validate(*fresh_));
  // ...and the quantized path is identical whether the int8 weights came
  // from the file or were derived on first use.
  const ValidationMode quantized{true, 0.25};
  ExpectVerdictsIdentical(full->validator().Validate(*fresh_, quantized),
                          legacy->validator().Validate(*fresh_, quantized));
  std::remove(path.c_str());
  std::remove(legacy_path.c_str());
}

// The service's quantized option routes its parallel fan-out through the
// same mode; micro-batched parallel validation equals the serial verdict.
TEST_F(QuantizedCheckpointTest, ServiceQuantizedOptionMatchesValidator) {
  const std::string path = "/tmp/dquag_quantized_service.bin";
  ASSERT_TRUE(pipeline_->Save(path).ok());
  ValidationServiceOptions options;
  options.quantized = true;
  options.micro_batch_rows = 32;  // force an actual fan-out on 300 rows
  auto service = ValidationService::FromCheckpoint(path, options);
  ASSERT_TRUE(service.ok()) << service.status().ToString();

  const BatchVerdict serial =
      pipeline_->validator().Validate(*fresh_, ValidationMode{true, 0.25});
  const BatchVerdict served = (*service)->Validate(*fresh_);
  ExpectVerdictsIdentical(serial, served);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace dquag
