// Reproduces Figure 3: accuracy of all methods on the Airbnb, Chicago Divvy
// Bicycle, and Google Play datasets with real-world-style errors (§4.3).
//
// The three datasets come in clean and dirty versions; the dirty versions
// carry heterogeneous real-world dirt (impossible prices, dock faults,
// rating-19 row shifts, typos, missing cells, conflicting attribute pairs).
// 50 clean and 50 dirty batches (10% samples) are classified per dataset.

#include <cstdio>
#include <functional>
#include <vector>

#include "baselines/adqv.h"
#include "baselines/deequ.h"
#include "baselines/gate.h"
#include "baselines/tfdv.h"
#include "bench_util.h"
#include "data/generators.h"
#include "eval/experiment.h"
#include "util/logging.h"
#include "util/stopwatch.h"

namespace dquag {
namespace {

void RunDataset(
    const std::string& name,
    const std::function<Table(int64_t, Rng&)>& generate_clean,
    const std::function<Table(const Table&, Rng&, std::vector<bool>*)>&
        corrupt,
    int64_t rows, int64_t epochs, int num_batches, uint64_t seed) {
  std::printf("\n=== Figure 3: %s (real-world errors) ===\n", name.c_str());
  Rng rng(seed);
  // Paper protocol: the clean and dirty dataset versions share their rows
  // (the dirty version is the uncleaned original); batches are 10% samples
  // of each version.
  const Table train_clean = generate_clean(rows, rng);
  const Table& test_clean = train_clean;
  const Table dirty = corrupt(train_clean, rng, nullptr);

  DeequValidator deequ_auto(BaselineMode::kAuto);
  DeequValidator deequ_expert(BaselineMode::kExpert);
  TfdvValidator tfdv_auto(BaselineMode::kAuto);
  TfdvValidator tfdv_expert(BaselineMode::kExpert);
  AdqvValidator adqv;
  GateValidator gate;
  DquagPipelineOptions options;
  options.config.epochs = epochs;
  options.config.seed = seed;
  // The paper tunes the batch-flag multiplier n "based on observed
  // reconstruction errors after deployment" (§3.2.1; they use 1.2 at ~100k
  // rows). Our datasets are ~6k rows, so 10% batches carry ~4x more
  // binomial noise around the 5% base rate; n = 1.5 absorbs it.
  options.config.batch_flag_multiplier = bench::EnvDouble("DQUAG_FLAG_N", 1.5);
  DquagBatchValidator dquag(std::move(options));

  std::vector<BatchValidator*> methods = {&dquag,      &adqv,
                                          &deequ_auto, &deequ_expert,
                                          &tfdv_auto,  &tfdv_expert, &gate};
  Stopwatch fit_time;
  for (BatchValidator* m : methods) m->Fit(train_clean);
  std::printf("[fit all methods on %lld clean rows: %.1fs]\n",
              static_cast<long long>(rows), fit_time.ElapsedSeconds());

  Rng batch_rng(seed + 29);
  const BatchSets sets =
      MakeBatchSets(test_clean, dirty, num_batches, 0.1, batch_rng);
  std::vector<MethodResult> results;
  for (BatchValidator* m : methods) {
    results.push_back(EvaluateValidator(*m, sets));
  }
  PrintResultTable(name + " - Accuracy", results);
}

void RunAll() {
  const bool fast = bench::FastMode();
  const int64_t rows = bench::EnvInt("DQUAG_ROWS", fast ? 1500 : 6000);
  const int64_t epochs = bench::EnvInt("DQUAG_EPOCHS", fast ? 6 : 20);
  const int num_batches =
      static_cast<int>(bench::EnvInt("DQUAG_BATCHES", fast ? 10 : 50));

  RunDataset("Airbnb", datasets::GenerateAirbnbClean,
             datasets::CorruptAirbnb, rows, epochs, num_batches, 101);
  RunDataset("Bicycle", datasets::GenerateBicycleClean,
             datasets::CorruptBicycle, rows, epochs, num_batches, 103);
  RunDataset("App (Google Play)", datasets::GenerateGooglePlayClean,
             datasets::CorruptGooglePlay, rows, epochs, num_batches, 107);
}

}  // namespace
}  // namespace dquag

int main() {
  dquag::SetLogLevel(dquag::LogLevel::kWarning);
  dquag::RunAll();
  return 0;
}
