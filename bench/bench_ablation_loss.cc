// Ablation bench (beyond the paper's tables; design choices from §3.1.2):
//   1. Weighted vs unweighted validation-decoder loss.
//   2. Denoising input-mask probability (the identity-mapping regularizer).
//   3. The batch-flag multiplier n in the "5% * n" rule (§3.2.1).
// Metric: flagged-fraction separation between clean and conflict-corrupted
// Credit Card data, plus batch accuracy over 20 clean + 20 dirty batches.

#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "data/batch_sampler.h"
#include "data/error_injector.h"
#include "data/generators.h"
#include "eval/experiment.h"
#include "util/logging.h"

namespace dquag {
namespace {

struct AblationOutcome {
  double clean_flagged = 0.0;
  double dirty_flagged = 0.0;
  double accuracy = 0.0;
};

AblationOutcome Evaluate(const DquagPipeline& pipeline,
                         const Table& test_clean, const Table& dirty,
                         int num_batches, uint64_t seed) {
  AblationOutcome outcome;
  outcome.clean_flagged = pipeline.Validate(test_clean).flagged_fraction;
  outcome.dirty_flagged = pipeline.Validate(dirty).flagged_fraction;
  Rng rng(seed);
  ConfusionCounts counts;
  for (int b = 0; b < num_batches; ++b) {
    counts.Add(pipeline.Validate(SampleBatch(test_clean, 500, rng)).is_dirty,
               false);
    counts.Add(pipeline.Validate(SampleBatch(dirty, 500, rng)).is_dirty,
               true);
  }
  outcome.accuracy = counts.Accuracy();
  return outcome;
}

void RunAll() {
  const bool fast = bench::FastMode();
  const int64_t rows = bench::EnvInt("DQUAG_ROWS", fast ? 1500 : 5000);
  // Deliberately a LOW-epoch budget: with full training every variant
  // saturates (accuracy 1.0) on this task; the weighting and masking
  // mechanisms show their value in how fast the error separation emerges.
  const int64_t epochs = bench::EnvInt("DQUAG_EPOCHS", fast ? 4 : 8);
  const int num_batches =
      static_cast<int>(bench::EnvInt("DQUAG_BATCHES", fast ? 8 : 20));

  Rng rng(71);
  const Table train_clean = datasets::GenerateCreditCard(rows, rng);
  const Table test_clean = datasets::GenerateCreditCard(rows, rng);
  ErrorInjector injector(72);
  const Table dirty =
      injector.InjectCreditIncomeConflict(test_clean, 0.2).table;

  std::printf("=== Ablation: Credit Card hidden conflict (income) ===\n");
  std::printf("%-34s %10s %10s %9s\n", "Variant", "clean fl%", "dirty fl%",
              "accuracy");

  struct Variant {
    std::string label;
    float alpha;      // validation-loss weighting on/off via alpha choice
    bool weighted;    // use the exp(-e/tau) weighting
    float mask_prob;
    double flag_multiplier;
  };
  // Note: the "unweighted" variant keeps alpha=1 but disables the
  // per-sample weighting, isolating the paper's weighting mechanism.
  const std::vector<Variant> variants = {
      {"paper default (weighted, mask .15)", 1.0f, true, 0.15f, 1.2},
      {"unweighted validation loss", 1.0f, false, 0.15f, 1.2},
      {"no input masking", 1.0f, true, 0.0f, 1.2},
      {"mask 0.30", 1.0f, true, 0.30f, 1.2},
      {"flag multiplier n=1.0", 1.0f, true, 0.15f, 1.0},
      {"flag multiplier n=2.0", 1.0f, true, 0.15f, 2.0},
  };

  for (const Variant& variant : variants) {
    DquagPipelineOptions options;
    options.config.epochs = epochs;
    options.config.seed = 71;
    options.config.alpha = variant.alpha;
    options.config.input_mask_prob = variant.mask_prob;
    options.config.batch_flag_multiplier = variant.flag_multiplier;
    // Unweighted: emulate by zeroing the weighting effect through config —
    // the trainer always weights, so we emulate by alpha-only training with
    // beta covering reconstruction (see DESIGN.md ablation notes).
    options.config.disable_loss_weighting = !variant.weighted;
    DquagPipeline pipeline(std::move(options));
    DQUAG_CHECK(pipeline.Fit(train_clean).ok());
    const AblationOutcome outcome =
        Evaluate(pipeline, test_clean, dirty, num_batches, 73);
    std::printf("%-34s %9.2f%% %9.2f%% %9.3f\n", variant.label.c_str(),
                outcome.clean_flagged * 100.0, outcome.dirty_flagged * 100.0,
                outcome.accuracy);
  }
}

}  // namespace
}  // namespace dquag

int main() {
  dquag::SetLogLevel(dquag::LogLevel::kWarning);
  dquag::RunAll();
  return 0;
}
