// Drift-to-recovery latency for the continuous pipeline.
//
// Two legs, one story. The in-process leg trains a pipeline, streams a
// benign covariate shift past it and measures how many batches the
// monitor + RetrainController need to arm the retrain trigger, then the
// wall time of the full retrain -> atomic-save -> swap protocol and the
// flag-rate recovery it buys. The socket leg replays the same drift
// through a live ServeDaemon with --auto-retrain semantics under
// concurrent client traffic and counts requests: the hot swap must not
// drop or error a single one, and the bench exits non-zero if it does —
// this is the zero-drop gate CI enforces.
//
// --json[=path] writes a BENCH_drift.json machine-readable summary
// (default path: BENCH_drift.json). DQUAG_BENCH_FAST=1 shrinks the
// workload. Knobs: DQUAG_TRAIN_ROWS, DQUAG_EPOCHS, DQUAG_DRIFT_CLIENTS.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <limits>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "core/retrain_controller.h"
#include "core/validation_service.h"
#include "data/batch_sampler.h"
#include "data/generators.h"
#include "serve/client.h"
#include "serve/server.h"
#include "util/atomic_file.h"
#include "util/csv.h"
#include "util/logging.h"
#include "util/stopwatch.h"

namespace dquag {
namespace {

// Benign covariate shift: every numeric column moves up by `frac` of its
// observed span (same regime the drift tests use).
Table ShiftNumericColumns(const Table& table, double frac) {
  Table shifted = table;
  for (int64_t c = 0; c < table.num_columns(); ++c) {
    if (table.schema().column(c).type != ColumnType::kNumeric) continue;
    std::vector<double>& column = shifted.Numeric(c);
    double lo = std::numeric_limits<double>::infinity();
    double hi = -std::numeric_limits<double>::infinity();
    for (double v : column) {
      if (IsMissing(v)) continue;
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
    const double span = hi > lo ? hi - lo : 1.0;
    for (double& value : column) {
      if (!IsMissing(value)) value += frac * span;
    }
  }
  return shifted;
}

struct DriftMetrics {
  int64_t detection_batches = 0;
  int64_t detection_rows = 0;
  double retrain_wall_ms = 0.0;
  double degraded_flag_rate = 0.0;
  double recovered_flag_rate = 0.0;
  bool ok = false;
};

DriftMetrics RunInProcessLeg(const std::string& checkpoint,
                             const Table& clean, const Table& shifted,
                             int64_t batch_rows, int64_t finetune_epochs) {
  DriftMetrics m;

  ValidationServiceOptions service_options;
  service_options.monitor.warmup_rows = 2 * batch_rows;
  service_options.monitor.drift_window_rows = 6 * batch_rows;
  auto service_or =
      ValidationService::FromCheckpoint(checkpoint, service_options);
  DQUAG_CHECK(service_or.ok());
  std::shared_ptr<ValidationService> service = std::move(*service_or);

  RetrainOptions retrain;
  retrain.min_buffer_rows = batch_rows / 2;
  retrain.max_buffer_rows = 10 * batch_rows;
  retrain.trigger_observations = 3;
  retrain.finetune_epochs = finetune_epochs;
  RetrainController controller(
      checkpoint, retrain, [&](const std::string& new_path) -> Status {
        auto swapped =
            ValidationService::FromCheckpoint(new_path, service_options);
        if (!swapped.ok()) return swapped.status();
        service = std::move(*swapped);
        return Status::Ok();
      });

  auto feed = [&](const Table& source, Rng& batch_rng) {
    Table batch = SampleBatch(source, batch_rows, batch_rng);
    BatchVerdict verdict = service->Validate(batch);
    MonitorObservation observation = service->ObserveVerdict(verdict);
    controller.ObserveBatch(batch, verdict, observation);
    return verdict.flagged_fraction;
  };

  // Warm up the monitor on the original regime.
  Rng stream_rng(99);
  for (int i = 0; i < 3; ++i) feed(clean, stream_rng);

  // Drift starts NOW; count batches until the trigger arms.
  while (!controller.ShouldRetrain() && m.detection_batches < 60) {
    m.degraded_flag_rate = feed(shifted, stream_rng);
    ++m.detection_batches;
  }
  m.detection_rows = m.detection_batches * batch_rows;
  if (!controller.ShouldRetrain()) {
    std::fprintf(stderr, "FAIL: drift not detected within 60 batches\n");
    return m;
  }

  Stopwatch retrain_timer;
  auto new_path = controller.RetrainAndSwap();
  m.retrain_wall_ms = retrain_timer.ElapsedSeconds() * 1e3;
  if (!new_path.ok()) {
    std::fprintf(stderr, "FAIL: retrain: %s\n",
                 new_path.status().ToString().c_str());
    return m;
  }

  Rng eval_rng(7);
  m.recovered_flag_rate =
      service->Validate(SampleBatch(shifted, 2 * batch_rows, eval_rng))
          .flagged_fraction;
  m.ok = m.recovered_flag_rate < m.degraded_flag_rate;
  if (!m.ok) {
    std::fprintf(stderr, "FAIL: flag rate did not recover (%.3f -> %.3f)\n",
                 m.degraded_flag_rate, m.recovered_flag_rate);
  }
  std::remove(new_path->c_str());
  return m;
}

struct ServeMetrics {
  int64_t requests_total = 0;
  int64_t requests_during_retrain = 0;
  int64_t requests_dropped = 0;
  int64_t retrains = 0;
  double drift_to_swap_ms = 0.0;
  bool ok = false;
};

ServeMetrics RunServeLeg(const std::string& checkpoint, const Table& clean,
                         const Table& shifted, int64_t batch_rows,
                         int64_t clients, int64_t finetune_epochs) {
  ServeMetrics m;

  ServeOptions options;
  options.auto_retrain = true;
  options.retrain.min_buffer_rows = batch_rows / 2;
  options.retrain.max_buffer_rows = 10 * batch_rows;
  options.retrain.trigger_observations = 3;
  options.retrain.finetune_epochs = finetune_epochs;
  options.registry.service.monitor.warmup_rows = 2 * batch_rows;
  options.registry.service.monitor.drift_window_rows = 6 * batch_rows;
  ServeDaemon daemon(options);
  DQUAG_CHECK(daemon.Start().ok());
  DQUAG_CHECK(daemon.registry().Deploy("bench/drift", checkpoint).ok());

  Rng sample_rng(31);
  const std::string clean_csv =
      WriteCsvString(SampleBatch(clean, batch_rows, sample_rng).ToCsv());
  const std::string shifted_csv =
      WriteCsvString(SampleBatch(shifted, batch_rows, sample_rng).ToCsv());

  std::atomic<bool> stop{false};
  std::atomic<bool> drifted{false};
  std::atomic<int64_t> requests{0};
  std::atomic<int64_t> requests_after_drift{0};
  std::atomic<int64_t> dropped{0};
  std::vector<std::thread> workers;
  for (int64_t c = 0; c < clients; ++c) {
    workers.emplace_back([&] {
      auto client = ServeClient::Connect("127.0.0.1", daemon.port());
      if (!client.ok()) {
        dropped.fetch_add(1);
        return;
      }
      while (!stop.load(std::memory_order_acquire)) {
        const bool in_drift = drifted.load(std::memory_order_acquire);
        auto verdict =
            client->Validate("bench/drift", in_drift ? shifted_csv
                                                     : clean_csv);
        requests.fetch_add(1);
        if (in_drift) requests_after_drift.fetch_add(1);
        if (!verdict.ok()) dropped.fetch_add(1);
      }
    });
  }

  auto observer = ServeClient::Connect("127.0.0.1", daemon.port());
  DQUAG_CHECK(observer.ok());

  // Clean traffic, then flip the regime and time drift -> swap over the
  // wire (detection + retrain + hot swap, as a client experiences it).
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  drifted.store(true, std::memory_order_release);
  Stopwatch swap_timer;
  for (int poll = 0; poll < 1200 && m.retrains == 0; ++poll) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    auto stats = observer->Stats("bench/drift");
    if (stats.ok() && !stats->empty()) m.retrains = (*stats)[0].retrains;
  }
  m.drift_to_swap_ms = swap_timer.ElapsedSeconds() * 1e3;
  stop.store(true, std::memory_order_release);
  for (std::thread& worker : workers) worker.join();

  m.requests_total = requests.load();
  m.requests_during_retrain = requests_after_drift.load();
  m.requests_dropped = dropped.load();
  m.ok = m.retrains >= 1 && m.requests_dropped == 0 && m.requests_total > 0;
  if (m.retrains < 1) {
    std::fprintf(stderr, "FAIL: daemon never retrained under drift\n");
  }
  if (m.requests_dropped != 0) {
    std::fprintf(stderr, "FAIL: %lld requests dropped during retrain/swap\n",
                 static_cast<long long>(m.requests_dropped));
  }

  auto snapshot = daemon.RetrainSnapshot("bench/drift");
  daemon.Stop();
  if (snapshot.ok()) std::remove(snapshot->current_checkpoint.c_str());
  return m;
}

int RunAll(const char* json_path) {
  const bool fast = bench::FastMode();
  const int64_t train_rows = bench::EnvInt("DQUAG_TRAIN_ROWS", 600);
  const int64_t epochs = bench::EnvInt("DQUAG_EPOCHS", fast ? 2 : 4);
  const int64_t clients =
      bench::EnvInt("DQUAG_DRIFT_CLIENTS", fast ? 2 : 4);
  const int64_t batch_rows = fast ? 128 : 200;
  const int64_t finetune_epochs = fast ? 1 : 3;
  const double shift = 0.3;

  std::printf("=== drift detection -> retrain -> zero-drop swap ===\n");
  std::printf("(%lld train rows, %lld-row batches, shift %.2f, "
              "%lld socket clients)\n",
              static_cast<long long>(train_rows),
              static_cast<long long>(batch_rows), shift,
              static_cast<long long>(clients));

  Rng rng(1234);
  Table clean = datasets::GenerateCreditCard(train_rows, rng);
  Table shifted = ShiftNumericColumns(clean, shift);

  DquagPipelineOptions pipeline_options;
  pipeline_options.config.encoder.hidden_dim = 16;
  pipeline_options.config.epochs = epochs;
  pipeline_options.config.seed = 7;
  DquagPipeline pipeline(std::move(pipeline_options));
  DQUAG_CHECK(pipeline.Fit(clean).ok());
  const std::string checkpoint = "bench_drift_model.ckpt";
  DQUAG_CHECK(pipeline.Save(checkpoint).ok());

  const DriftMetrics drift =
      RunInProcessLeg(checkpoint, clean, shifted, batch_rows,
                      finetune_epochs);
  const ServeMetrics serve = RunServeLeg(checkpoint, clean, shifted,
                                         batch_rows, clients,
                                         finetune_epochs);
  std::remove(checkpoint.c_str());

  std::printf("%20s  %14s  %14s  %12s  %12s\n", "detect_batches",
              "detect_rows", "retrain_ms", "degraded", "recovered");
  std::printf("%20lld  %14lld  %14.1f  %12.3f  %12.3f\n",
              static_cast<long long>(drift.detection_batches),
              static_cast<long long>(drift.detection_rows),
              drift.retrain_wall_ms, drift.degraded_flag_rate,
              drift.recovered_flag_rate);
  std::printf("%20s  %14s  %14s  %12s\n", "drift_to_swap_ms",
              "requests", "during_swap", "dropped");
  std::printf("%20.1f  %14lld  %14lld  %12lld\n", serve.drift_to_swap_ms,
              static_cast<long long>(serve.requests_total),
              static_cast<long long>(serve.requests_during_retrain),
              static_cast<long long>(serve.requests_dropped));

  const bool ok = drift.ok && serve.ok;
  if (json_path != nullptr) {
    std::ostringstream out;
    out << "{\n"
        << "  \"train_rows\": " << train_rows << ",\n"
        << "  \"batch_rows\": " << batch_rows << ",\n"
        << "  \"shift_fraction\": " << shift << ",\n"
        << "  \"detection_latency_batches\": " << drift.detection_batches
        << ",\n"
        << "  \"detection_latency_rows\": " << drift.detection_rows << ",\n"
        << "  \"retrain_wall_ms\": " << drift.retrain_wall_ms << ",\n"
        << "  \"degraded_flag_rate\": " << drift.degraded_flag_rate << ",\n"
        << "  \"recovered_flag_rate\": " << drift.recovered_flag_rate
        << ",\n"
        << "  \"serve_clients\": " << clients << ",\n"
        << "  \"serve_retrains\": " << serve.retrains << ",\n"
        << "  \"serve_drift_to_swap_ms\": " << serve.drift_to_swap_ms
        << ",\n"
        << "  \"serve_requests_total\": " << serve.requests_total << ",\n"
        << "  \"serve_requests_during_retrain\": "
        << serve.requests_during_retrain << ",\n"
        << "  \"serve_requests_dropped\": " << serve.requests_dropped
        << ",\n"
        << "  \"zero_drop\": "
        << (serve.requests_dropped == 0 ? "true" : "false") << ",\n"
        << "  \"ok\": " << (ok ? "true" : "false") << "\n"
        << "}\n";
    const Status json_status = WriteFileAtomic(json_path, out.str());
    if (!json_status.ok()) {
      std::fprintf(stderr, "FAIL: writing %s: %s\n", json_path,
                   json_status.ToString().c_str());
      return 1;
    }
    std::printf("wrote %s\n", json_path);
  }
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace dquag

int main(int argc, char** argv) {
  dquag::SetLogLevel(dquag::LogLevel::kWarning);
  const char* json_path = nullptr;
  std::string json_storage;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      json_path = "BENCH_drift.json";
    } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_storage = argv[i] + 7;
      json_path = json_storage.c_str();
    }
  }
  return dquag::RunAll(json_path);
}
