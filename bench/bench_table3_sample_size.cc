// Reproduces Table 3: overall accuracy vs validation sample size (§4.5).
//
// For sample sizes {10, 20, 50, 100, 500, 1000} rows per batch, 50 clean +
// 50 dirty batches are classified on Airbnb, Bicycle, and NY Taxi; accuracy
// should rise with sample size and saturate at 100% by ~500 (small samples
// make the flagged-fraction estimate noisy around the 6% cutoff).

#include <cstdio>
#include <functional>
#include <vector>

#include "bench_util.h"
#include "data/batch_sampler.h"
#include "data/error_injector.h"
#include "data/generators.h"
#include "eval/experiment.h"
#include "util/logging.h"

namespace dquag {
namespace {

void RunDataset(
    const std::string& name,
    const std::function<Table(int64_t, Rng&)>& generate_clean,
    const std::function<Table(const Table&, Rng&)>& generate_dirty,
    const std::vector<int64_t>& sample_sizes, int64_t rows, int64_t epochs,
    int num_batches, uint64_t seed) {
  Rng rng(seed);
  // Paper protocol: batches are samples of the clean dataset itself and of
  // its corrupted counterpart.
  const Table train_clean = generate_clean(rows, rng);
  const Table& test_clean = train_clean;
  const Table dirty = generate_dirty(train_clean, rng);

  DquagPipelineOptions options;
  options.config.epochs = epochs;
  options.config.seed = seed;
  // The paper tunes the batch-flag multiplier n "based on observed
  // reconstruction errors after deployment" (§3.2.1; they use 1.2 at ~100k
  // rows). Our datasets are ~6k rows, so 10% batches carry ~4x more
  // binomial noise around the 5% base rate; n = 1.5 absorbs it.
  options.config.batch_flag_multiplier = bench::EnvDouble("DQUAG_FLAG_N", 1.5);
  DquagPipeline pipeline(std::move(options));
  DQUAG_CHECK(pipeline.Fit(train_clean).ok());

  std::printf("%-10s", name.c_str());
  Rng batch_rng(seed + 3);
  for (int64_t sample_size : sample_sizes) {
    ConfusionCounts counts;
    for (int b = 0; b < num_batches; ++b) {
      Table clean_batch = SampleBatch(
          test_clean, static_cast<size_t>(sample_size), batch_rng);
      counts.Add(pipeline.Validate(clean_batch).is_dirty, false);
      Table dirty_batch =
          SampleBatch(dirty, static_cast<size_t>(sample_size), batch_rng);
      counts.Add(pipeline.Validate(dirty_batch).is_dirty, true);
    }
    std::printf(" %7.1f", counts.Accuracy() * 100.0);
  }
  std::printf("\n");
}

void RunAll() {
  const bool fast = bench::FastMode();
  const int64_t rows = bench::EnvInt("DQUAG_ROWS", fast ? 1500 : 6000);
  const int64_t epochs = bench::EnvInt("DQUAG_EPOCHS", fast ? 6 : 20);
  const int num_batches =
      static_cast<int>(bench::EnvInt("DQUAG_BATCHES", fast ? 10 : 50));
  const std::vector<int64_t> sample_sizes = {10, 20, 50, 100, 500, 1000};

  std::printf("=== Table 3: accuracy (%%) vs sample size ===\n");
  std::printf("%-10s", "Dataset");
  for (int64_t s : sample_sizes) {
    std::printf(" %7lld", static_cast<long long>(s));
  }
  std::printf("\n");

  RunDataset(
      "Airbnb", datasets::GenerateAirbnbClean,
      [](const Table& clean, Rng& r) {
        return datasets::CorruptAirbnb(clean, r, nullptr);
      },
      sample_sizes, rows, epochs, num_batches, /*seed=*/311);
  RunDataset(
      "Bicycle", datasets::GenerateBicycleClean,
      [](const Table& clean, Rng& r) {
        return datasets::CorruptBicycle(clean, r, nullptr);
      },
      sample_sizes, rows, epochs, num_batches, /*seed=*/313);
  RunDataset(
      "NY Taxi",
      [](int64_t n, Rng& r) { return datasets::GenerateNyTaxi(n, r); },
      [](const Table& clean, Rng& r) {
        // NY Taxi has no ground-truth dirty version; inject the §4.1.2
        // ordinary-error mix.
        (void)r;
        ErrorInjector injector(991);
        return injector
            .InjectNumericAnomalies(
                clean, {"trip_distance", "fare_amount", "tip_amount"}, 0.2)
            .table;
      },
      sample_sizes, rows, epochs, num_batches, /*seed=*/317);
}

}  // namespace
}  // namespace dquag

int main() {
  dquag::SetLogLevel(dquag::LogLevel::kWarning);
  dquag::RunAll();
  return 0;
}
