// Reproduces Figure 4: validation time vs data size and dimensionality on
// the NY Taxi dataset (§4.5).
//
// A model is trained per dimensionality (5, 10, 18 columns) on a modest
// clean sample; Phase-2 validation is then timed on datasets of increasing
// size, running through the ValidationService — the deployed configuration:
// micro-batched tape-free inference fanned across the thread pool. The
// expected result is LINEAR growth in rows (and roughly linear in
// dimensionality). Absolute times reflect this CPU substrate, not the
// paper's A100 — the shape is the reproduction target.
//
// DQUAG_FIG4_MAX_ROWS (default 250000) caps the sweep so the whole bench
// suite stays inside a coffee break; set 1000000 to reproduce the paper's
// full x-axis.

#include <cstdio>
#include <memory>
#include <vector>

#include "bench_util.h"
#include "core/validation_service.h"
#include "data/generators.h"
#include "eval/experiment.h"
#include "util/logging.h"
#include "util/stopwatch.h"

namespace dquag {
namespace {

void RunAll() {
  const bool fast = bench::FastMode();
  const int64_t train_rows = bench::EnvInt("DQUAG_ROWS", fast ? 1500 : 5000);
  const int64_t epochs = bench::EnvInt("DQUAG_EPOCHS", fast ? 5 : 15);
  const int64_t max_rows =
      bench::EnvInt("DQUAG_FIG4_MAX_ROWS", fast ? 20000 : 250000);

  std::vector<int64_t> sizes;
  for (int64_t s : {10000LL, 25000LL, 50000LL, 100000LL, 250000LL, 500000LL,
                    1000000LL}) {
    if (s <= max_rows) sizes.push_back(s);
  }
  if (sizes.empty()) sizes.push_back(max_rows);

  std::printf("=== Figure 4: validation time (s) on NY Taxi ===\n");
  std::printf("%12s", "rows");
  for (int64_t dims : {5, 10, 18}) {
    std::printf("  %8lld-dim", static_cast<long long>(dims));
  }
  std::printf("\n");

  // One trained pipeline per dimensionality, each served by a
  // ValidationService (the deployed Phase-2 configuration).
  std::vector<std::unique_ptr<ValidationService>> services;
  for (int64_t dims : {5, 10, 18}) {
    Rng rng(41 + static_cast<uint64_t>(dims));
    Table clean = datasets::GenerateNyTaxi(train_rows, rng, dims);
    DquagPipelineOptions options;
    options.config.epochs = epochs;
    options.config.seed = 41;
    DquagPipeline pipeline(std::move(options));
    DQUAG_CHECK(pipeline.Fit(clean).ok());
    services.push_back(
        std::make_unique<ValidationService>(std::move(pipeline)));
  }

  for (int64_t rows : sizes) {
    std::printf("%12lld", static_cast<long long>(rows));
    int service_index = 0;
    for (int64_t dims : {5, 10, 18}) {
      Rng rng(97 + static_cast<uint64_t>(dims));
      Table data = datasets::GenerateNyTaxi(rows, rng, dims);
      const ValidationService& service = *services[service_index++];
      // Time preprocessing + reconstruction + thresholding (the paper's
      // "data quality validation time").
      Stopwatch timer;
      BatchVerdict verdict = service.Validate(data);
      const double seconds = timer.ElapsedSeconds();
      std::printf("  %12.2f", seconds);
      (void)verdict;
    }
    std::printf("\n");
  }
  std::printf("(expect each column to grow linearly with rows)\n");
}

}  // namespace
}  // namespace dquag

int main() {
  dquag::SetLogLevel(dquag::LogLevel::kWarning);
  dquag::RunAll();
  return 0;
}
