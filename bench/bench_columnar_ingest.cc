// Columnar (.dqc) vs CSV ingest throughput.
//
// Writes one synthetic NY-Taxi batch as both a CSV file and a converted
// .dqc file, then drains each through its TableChunkReader and reports
// rows/s:
//   * csv            — CsvChunkReader: tokenize + strtod every cell;
//   * columnar cold  — fresh ColumnarReader: mmap + first-touch checksum
//                      verification of every block payload;
//   * columnar warm  — Reset() on the same reader: the verification cache
//                      is hot, so a pass is pure decode (the steady-state
//                      cost of every epoch after the first in out-of-core
//                      training).
// bytes_touched() is reported for both columnar passes — the warm pass must
// add zero — along with the on-disk size of each representation.
//
// Parity gate: both formats must decode to bit-identical tables (FNV-1a
// over every cell, computed outside the timed region). Performance gate:
// warm columnar ingest must beat CSV by >= DQUAG_MIN_SPEEDUP (default 5x).
// Exits non-zero on either failure — CI runs this as a regression gate.
//
// --json[=path] writes a BENCH_columnar.json machine-readable summary
// (default path: BENCH_columnar.json). DQUAG_BENCH_FAST=1 shrinks the
// workload.

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "bench_util.h"
#include "util/atomic_file.h"
#include "data/columnar_reader.h"
#include "data/columnar_writer.h"
#include "data/error_injector.h"
#include "data/generators.h"
#include "data/table_chunk_reader.h"
#include "util/logging.h"
#include "util/stopwatch.h"

namespace dquag {
namespace {

int64_t FileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  return in.good() ? static_cast<int64_t>(in.tellg()) : 0;
}

/// Drains a reader without any per-cell work: the timed region measures
/// ingest (tokenize/decode into Table chunks), not consumption.
int64_t TimedDrain(TableChunkReader& reader, double* seconds) {
  Stopwatch timer;
  Table chunk;
  int64_t rows = 0;
  for (;;) {
    auto got = reader.Next(chunk);
    DQUAG_CHECK(got.ok());
    if (*got == 0) break;
    rows += *got;
  }
  *seconds = timer.ElapsedSeconds();
  return rows;
}

/// FNV-1a over every cell (numeric bit patterns, categorical bytes) — the
/// untimed parity check between the two decode paths.
uint64_t DrainHash(TableChunkReader& reader) {
  uint64_t h = 1469598103934665603ULL;
  const auto mix = [&h](const void* data, size_t size) {
    const unsigned char* bytes = static_cast<const unsigned char*>(data);
    for (size_t i = 0; i < size; ++i) {
      h ^= bytes[i];
      h *= 1099511628211ULL;
    }
  };
  Table chunk;
  for (;;) {
    auto got = reader.Next(chunk);
    DQUAG_CHECK(got.ok());
    if (*got == 0) break;
    for (int64_t c = 0; c < chunk.num_columns(); ++c) {
      if (chunk.schema().column(c).type == ColumnType::kNumeric) {
        const std::vector<double>& column = chunk.Numeric(c);
        mix(column.data(), column.size() * sizeof(double));
      } else {
        for (const std::string& cell : chunk.Categorical(c)) {
          mix(cell.data(), cell.size());
          mix("\x1f", 1);  // separator so "ab","c" != "a","bc"
        }
      }
    }
  }
  return h;
}

int RunAll(const char* json_path) {
  const bool fast = bench::FastMode();
  const int64_t rows = bench::EnvInt("DQUAG_ROWS", fast ? 4000 : 50000);
  const int64_t chunk_rows = bench::EnvInt("DQUAG_CHUNK_ROWS", 4096);
  const int64_t block_rows = bench::EnvInt("DQUAG_BLOCK_ROWS", 4096);
  const int64_t repeats = bench::EnvInt("DQUAG_REPEATS", fast ? 2 : 3);
  const double min_speedup = bench::EnvDouble("DQUAG_MIN_SPEEDUP", 5.0);

  std::printf("=== columnar vs CSV ingest ===\n");
  std::printf("(%lld rows, chunk %lld, block %lld, best of %lld)\n",
              static_cast<long long>(rows),
              static_cast<long long>(chunk_rows),
              static_cast<long long>(block_rows),
              static_cast<long long>(repeats));

  // Source data: NY-Taxi with injected missing cells so null bitmaps are
  // exercised, persisted as CSV — the interchange source of truth.
  Rng rng(47);
  Table incoming = datasets::GenerateNyTaxi(rows, rng, /*dims=*/10);
  {
    ErrorInjector injector(48);
    incoming = injector.InjectMissing(incoming, {"tip_amount"}, 0.05).table;
  }
  const Schema schema = incoming.schema();
  const std::string csv_path = "bench_columnar_input.csv";
  const std::string dqc_path = "bench_columnar_input.dqc";
  DQUAG_CHECK(WriteCsvFile(incoming.ToCsv(), csv_path).ok());
  incoming = Table();  // the files are the source of truth from here on

  // Conversion itself (CSV parse + encode + write), reported for context.
  double convert_seconds = 0.0;
  {
    Stopwatch timer;
    ColumnarWriterOptions options;
    options.block_rows = block_rows;
    auto converted = ConvertCsvToColumnar(csv_path, schema, dqc_path, options);
    DQUAG_CHECK(converted.ok());
    DQUAG_CHECK_EQ(*converted, rows);
    convert_seconds = timer.ElapsedSeconds();
  }

  CsvChunkReaderOptions csv_options;
  csv_options.chunk_rows = chunk_rows;
  ColumnarReaderOptions dqc_options;
  dqc_options.chunk_rows = chunk_rows;

  // CSV: fresh reader per repeat (the OS page cache warms after the first
  // pass; best-of keeps the comparison fair to CSV).
  double csv_seconds = 1e30;
  for (int64_t i = 0; i < repeats; ++i) {
    auto reader = CsvChunkReader::Open(csv_path, schema, csv_options);
    DQUAG_CHECK(reader.ok());
    double seconds = 0.0;
    DQUAG_CHECK_EQ(TimedDrain(**reader, &seconds), rows);
    csv_seconds = std::min(csv_seconds, seconds);
  }

  // Columnar cold: fresh reader per repeat — every pass pays mmap setup
  // plus first-touch checksum verification of all payloads.
  double cold_seconds = 1e30;
  uint64_t cold_bytes_touched = 0;
  bool is_mapped = false;
  for (int64_t i = 0; i < repeats; ++i) {
    auto reader = ColumnarReader::Open(dqc_path, dqc_options);
    DQUAG_CHECK(reader.ok());
    double seconds = 0.0;
    DQUAG_CHECK_EQ(TimedDrain(**reader, &seconds), rows);
    cold_seconds = std::min(cold_seconds, seconds);
    cold_bytes_touched = (*reader)->bytes_touched();
    is_mapped = (*reader)->is_mapped();
  }

  // Columnar warm: one reader, one warm-up pass, then timed Reset() passes
  // with the verification cache hot.
  double warm_seconds = 1e30;
  uint64_t warm_extra_bytes = 0;
  {
    auto reader = ColumnarReader::Open(dqc_path, dqc_options);
    DQUAG_CHECK(reader.ok());
    double seconds = 0.0;
    DQUAG_CHECK_EQ(TimedDrain(**reader, &seconds), rows);  // warm-up
    const uint64_t warmed = (*reader)->bytes_touched();
    for (int64_t i = 0; i < repeats; ++i) {
      (*reader)->Reset();
      DQUAG_CHECK_EQ(TimedDrain(**reader, &seconds), rows);
      warm_seconds = std::min(warm_seconds, seconds);
    }
    warm_extra_bytes = (*reader)->bytes_touched() - warmed;
  }

  // Parity: both formats decode to bit-identical tables.
  uint64_t csv_hash = 0, dqc_hash = 0;
  {
    auto reader = CsvChunkReader::Open(csv_path, schema, csv_options);
    DQUAG_CHECK(reader.ok());
    csv_hash = DrainHash(**reader);
  }
  {
    auto reader = ColumnarReader::Open(dqc_path, dqc_options);
    DQUAG_CHECK(reader.ok());
    dqc_hash = DrainHash(**reader);
  }

  const double csv_rows_per_sec = static_cast<double>(rows) / csv_seconds;
  const double cold_rows_per_sec = static_cast<double>(rows) / cold_seconds;
  const double warm_rows_per_sec = static_cast<double>(rows) / warm_seconds;
  const double warm_speedup = warm_rows_per_sec / csv_rows_per_sec;
  const int64_t csv_bytes = FileBytes(csv_path);
  const int64_t dqc_bytes = FileBytes(dqc_path);

  std::printf("%16s  %10s  %12s  %14s\n", "path", "seconds", "rows/s",
              "bytes touched");
  std::printf("%16s  %10.4f  %12.0f  %14lld\n", "csv", csv_seconds,
              csv_rows_per_sec, static_cast<long long>(csv_bytes));
  std::printf("%16s  %10.4f  %12.0f  %14llu\n", "columnar cold",
              cold_seconds, cold_rows_per_sec,
              static_cast<unsigned long long>(cold_bytes_touched));
  std::printf("%16s  %10.4f  %12.0f  %14llu\n", "columnar warm",
              warm_seconds, warm_rows_per_sec,
              static_cast<unsigned long long>(warm_extra_bytes));
  std::printf("convert: %.3fs; file bytes: csv %lld, dqc %lld; mmap: %s\n",
              convert_seconds, static_cast<long long>(csv_bytes),
              static_cast<long long>(dqc_bytes), is_mapped ? "yes" : "no");
  std::printf("warm columnar vs csv: %.1fx (gate: >= %.1fx)\n", warm_speedup,
              min_speedup);

  bool failed = false;
  if (csv_hash != dqc_hash) {
    std::fprintf(stderr,
                 "FAIL: csv and columnar decodes are not bit-identical "
                 "(%016llx vs %016llx)\n",
                 static_cast<unsigned long long>(csv_hash),
                 static_cast<unsigned long long>(dqc_hash));
    failed = true;
  }
  if (warm_extra_bytes != 0) {
    std::fprintf(stderr,
                 "FAIL: warm passes re-verified %llu payload bytes; the "
                 "verification cache is broken\n",
                 static_cast<unsigned long long>(warm_extra_bytes));
    failed = true;
  }
  if (warm_speedup < min_speedup) {
    std::fprintf(stderr,
                 "FAIL: warm columnar ingest is only %.1fx CSV (gate %.1fx)\n",
                 warm_speedup, min_speedup);
    failed = true;
  }

  if (json_path != nullptr) {
    std::ostringstream out;
    out << "{\n"
        << "  \"rows\": " << rows << ",\n"
        << "  \"chunk_rows\": " << chunk_rows << ",\n"
        << "  \"block_rows\": " << block_rows << ",\n"
        << "  \"convert_seconds\": " << convert_seconds << ",\n"
        << "  \"csv_seconds\": " << csv_seconds << ",\n"
        << "  \"columnar_cold_seconds\": " << cold_seconds << ",\n"
        << "  \"columnar_warm_seconds\": " << warm_seconds << ",\n"
        << "  \"csv_rows_per_sec\": " << csv_rows_per_sec << ",\n"
        << "  \"columnar_cold_rows_per_sec\": " << cold_rows_per_sec << ",\n"
        << "  \"columnar_warm_rows_per_sec\": " << warm_rows_per_sec << ",\n"
        << "  \"warm_speedup_vs_csv\": " << warm_speedup << ",\n"
        << "  \"csv_file_bytes\": " << csv_bytes << ",\n"
        << "  \"dqc_file_bytes\": " << dqc_bytes << ",\n"
        << "  \"payload_bytes_touched_cold\": " << cold_bytes_touched
        << ",\n"
        << "  \"payload_bytes_touched_warm_extra\": " << warm_extra_bytes
        << ",\n"
        << "  \"mmap\": " << (is_mapped ? "true" : "false") << ",\n"
        << "  \"decode_parity\": " << (csv_hash == dqc_hash ? "true" : "false")
        << ",\n"
        << "  \"gate_min_speedup\": " << min_speedup << ",\n"
        << "  \"gate_passed\": " << (failed ? "false" : "true") << "\n"
        << "}\n";
    const Status json_status = WriteFileAtomic(json_path, out.str());
    if (!json_status.ok()) {
      std::fprintf(stderr, "FAIL: writing %s: %s\n", json_path,
                   json_status.ToString().c_str());
      failed = true;
    }
    std::printf("wrote %s\n", json_path);
  }

  std::remove(csv_path.c_str());
  std::remove(dqc_path.c_str());
  return failed ? 1 : 0;
}

}  // namespace
}  // namespace dquag

int main(int argc, char** argv) {
  dquag::SetLogLevel(dquag::LogLevel::kWarning);
  const char* json_path = nullptr;
  std::string json_storage;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      json_path = "BENCH_columnar.json";
    } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_storage = argv[i] + 7;
      json_path = json_storage.c_str();
    }
  }
  return dquag::RunAll(json_path);
}
