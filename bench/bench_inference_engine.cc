// Tape vs engine vs SIMD-dispatched vs int8-quantized inference throughput.
//
// Phase 2 is the deployed hot path; this bench quantifies each rung of the
// ladder on the Figure-4 data shape (NY Taxi, 18 columns):
//   part 1 — tape (NoGrad autograd ops) vs the tape-free engine;
//   part 2 — the engine under the forced-scalar kernel table (the portable
//             baseline, and a stand-in for the pre-dispatch float path) vs
//             the runtime-dispatched table vs the int8 quantized path, all
//             single-thread at the validator chunk size; also verifies the
//             scalar and dispatched tables produce BYTE-IDENTICAL verdicts
//             and reports the quantized verdict flip fraction;
//   part 3 — ValidationService scaling across concurrent client threads.
//
// --json[=path] writes a BENCH_inference.json machine-readable summary
// (default path: BENCH_inference.json). Exits non-zero if the speedup gate
// fails (quantized vs forced-scalar float, DQUAG_MIN_SPEEDUP, default 2.0),
// if scalar/dispatched verdicts diverge, or if the quantized flip fraction
// exceeds 0.5% — CI runs this as a regression gate.
// DQUAG_BENCH_FAST=1 shrinks the workload for smoke runs.

#include <cstdio>
#include <cstring>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "util/atomic_file.h"
#include "core/validation_service.h"
#include "data/generators.h"
#include "engine/inference_context.h"
#include "tensor/simd.h"
#include "util/logging.h"
#include "util/stopwatch.h"

namespace dquag {
namespace {

/// Identical per-instance verdicts, bit for bit (errors compared as raw
/// IEEE doubles).
bool VerdictsBitIdentical(const std::vector<InstanceVerdict>& a,
                          const std::vector<InstanceVerdict>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::memcmp(&a[i].error, &b[i].error, sizeof(double)) != 0 ||
        a[i].flagged != b[i].flagged ||
        a[i].suspect_features != b[i].suspect_features) {
      return false;
    }
  }
  return true;
}

int RunAll(const char* json_path) {
  const bool fast = bench::FastMode();
  const int64_t train_rows = bench::EnvInt("DQUAG_ROWS", fast ? 1000 : 3000);
  const int64_t epochs = bench::EnvInt("DQUAG_EPOCHS", fast ? 3 : 10);
  const int64_t eval_rows =
      bench::EnvInt("DQUAG_ENGINE_EVAL_ROWS", fast ? 20000 : 100000);
  const double min_speedup = bench::EnvDouble("DQUAG_MIN_SPEEDUP", 2.0);

  // Train on the Figure-4 shape: NY Taxi, 18 columns.
  Rng rng(41);
  Table clean = datasets::GenerateNyTaxi(train_rows, rng, /*dims=*/18);
  DquagPipelineOptions options;
  options.config.epochs = epochs;
  options.config.seed = 41;
  auto pipeline = std::make_unique<DquagPipeline>(std::move(options));
  DQUAG_CHECK(pipeline->Fit(clean).ok());

  Rng eval_rng(97);
  Table eval = datasets::GenerateNyTaxi(eval_rows, eval_rng, /*dims=*/18);
  const Tensor matrix = pipeline->preprocessor().Transform(eval);
  const int64_t d = matrix.dim(1);
  const DquagModel& model = pipeline->model();

  std::printf("=== tape vs engine: validation-head reconstruction ===\n");
  std::printf("(%lld eval rows, 18 columns, hidden %lld, single client)\n",
              static_cast<long long>(eval_rows),
              static_cast<long long>(model.encoder().config().hidden_dim));
  std::printf("%10s  %14s  %14s  %8s\n", "batch", "tape rows/s",
              "engine rows/s", "speedup");
  double tape_2048 = 0.0, engine_2048 = 0.0;
  // 512 is the service micro-batch default, 2048 the validator chunk
  // default, 8192 a large request.
  for (const int64_t batch : {512LL, 2048LL, 8192LL}) {
    auto run_chunks = [&](auto&& body) {
      for (int64_t start = 0; start < eval_rows; start += batch) {
        const int64_t end = std::min(eval_rows, start + batch);
        body(start, end);
      }
    };
    // Tape: NoGrad autograd ops, allocating per op (the pre-engine path).
    Stopwatch tape_timer;
    run_chunks([&](int64_t start, int64_t end) {
      Tensor slice({end - start, d});
      std::copy(matrix.data() + start * d, matrix.data() + end * d,
                slice.data());
      Tensor out = model.ReconstructValidationTape(slice);
      (void)out;
    });
    const double tape_s = tape_timer.ElapsedSeconds();

    // Engine: fused kernels over a reused per-thread workspace.
    InferenceContext& ctx = InferenceContext::ThreadLocal();
    Stopwatch engine_timer;
    run_chunks([&](int64_t start, int64_t end) {
      ctx.Rewind();
      Tensor& slice = ctx.Acquire({end - start, d});
      std::copy(matrix.data() + start * d, matrix.data() + end * d,
                slice.data());
      const Tensor& out = model.InferValidation(slice, ctx);
      (void)out;
    });
    const double engine_s = engine_timer.ElapsedSeconds();

    if (batch == 2048) {
      tape_2048 = eval_rows / tape_s;
      engine_2048 = eval_rows / engine_s;
    }
    std::printf("%10lld  %14.0f  %14.0f  %7.2fx\n",
                static_cast<long long>(batch), eval_rows / tape_s,
                eval_rows / engine_s, tape_s / engine_s);
  }

  std::printf("\n=== SIMD dispatch + int8 quantization (single thread, "
              "batch 2048) ===\n");
  std::printf("(active kernel table: %s)\n", simd::ActiveKernels().name);

  // Engine throughput under a given kernel table / quantization mode. Best
  // of `reps` passes over the eval set — single-thread, validator chunk
  // size.
  auto time_engine = [&](bool quantized) {
    InferenceContext& ctx = InferenceContext::ThreadLocal();
    ctx.set_quantized(quantized);
    const int reps = fast ? 2 : 3;
    double best = 0.0;
    for (int rep = 0; rep < reps; ++rep) {
      Stopwatch timer;
      for (int64_t start = 0; start < eval_rows; start += 2048) {
        const int64_t end = std::min(eval_rows, start + 2048);
        ctx.Rewind();
        Tensor& slice = ctx.Acquire({end - start, d});
        std::copy(matrix.data() + start * d, matrix.data() + end * d,
                  slice.data());
        const Tensor& out = model.InferValidation(slice, ctx);
        (void)out;
      }
      const double rows_per_sec = eval_rows / timer.ElapsedSeconds();
      best = std::max(best, rows_per_sec);
    }
    ctx.set_quantized(false);
    return best;
  };

  simd::SetKernelTableOverride(&simd::ScalarKernels());
  const double scalar_float = time_engine(false);
  simd::SetKernelTableOverride(nullptr);
  const double dispatched_float = time_engine(false);
  const double quantized_rows = time_engine(true);

  const double dispatch_speedup = dispatched_float / scalar_float;
  const double quant_speedup = quantized_rows / scalar_float;
  std::printf("%22s  %14s  %22s\n", "path", "rows/s", "vs scalar float");
  std::printf("%22s  %14.0f  %21.2fx\n", "scalar float", scalar_float, 1.0);
  std::printf("%22s  %14.0f  %21.2fx\n", "dispatched float",
              dispatched_float, dispatch_speedup);
  std::printf("%22s  %14.0f  %21.2fx\n", "dispatched quantized",
              quantized_rows, quant_speedup);

  // Verdict gates. Scalar vs dispatched float must be byte-identical; the
  // quantized path may flip at most 0.5% of verdicts (margin-band rows are
  // re-checked on the float path; see ValidationMode).
  const Validator& validator = pipeline->validator();
  const int64_t gate_rows = std::min<int64_t>(eval_rows, 20000);
  InferenceContext& ctx = InferenceContext::ThreadLocal();
  std::vector<InstanceVerdict> v_scalar(gate_rows), v_dispatched(gate_rows),
      v_quantized(gate_rows);
  simd::SetKernelTableOverride(&simd::ScalarKernels());
  validator.ValidateRowsInto(matrix, 0, gate_rows, ctx, v_scalar.data());
  simd::SetKernelTableOverride(nullptr);
  validator.ValidateRowsInto(matrix, 0, gate_rows, ctx, v_dispatched.data());
  validator.ValidateRowsInto(matrix, 0, gate_rows, ctx, v_quantized.data(),
                             ValidationMode{/*quantized=*/true,
                                            /*recheck_margin=*/0.25});
  const bool bit_identical = VerdictsBitIdentical(v_scalar, v_dispatched);
  int64_t flips = 0;
  for (int64_t r = 0; r < gate_rows; ++r) {
    if (v_dispatched[static_cast<size_t>(r)].flagged !=
        v_quantized[static_cast<size_t>(r)].flagged) {
      ++flips;
    }
  }
  const double flip_fraction =
      static_cast<double>(flips) / static_cast<double>(gate_rows);
  std::printf("scalar vs dispatched verdicts: %s (%lld rows)\n",
              bit_identical ? "byte-identical" : "DIVERGED",
              static_cast<long long>(gate_rows));
  std::printf("quantized verdict flips: %lld/%lld (%.4f%%)\n",
              static_cast<long long>(flips),
              static_cast<long long>(gate_rows), 100.0 * flip_fraction);

  bool failed = false;
  if (!bit_identical) {
    std::fprintf(stderr,
                 "FAIL: scalar and dispatched float verdicts diverged\n");
    failed = true;
  }
  if (flip_fraction > 0.005) {
    std::fprintf(stderr, "FAIL: quantized flip fraction %.4f%% > 0.5%%\n",
                 100.0 * flip_fraction);
    failed = true;
  }
  if (quant_speedup < min_speedup) {
    std::fprintf(stderr,
                 "FAIL: quantized speedup %.2fx vs scalar float below the "
                 "%.2fx gate (DQUAG_MIN_SPEEDUP)\n",
                 quant_speedup, min_speedup);
    failed = true;
  }

  if (json_path != nullptr) {
    std::ostringstream out;
    out << "{\n"
        << "  \"eval_rows\": " << eval_rows << ",\n"
        << "  \"kernel_table\": \"" << simd::ActiveKernels().name << "\",\n"
        << "  \"tape_rows_per_sec_batch2048\": " << tape_2048 << ",\n"
        << "  \"engine_rows_per_sec_batch2048\": " << engine_2048 << ",\n"
        << "  \"scalar_float_rows_per_sec\": " << scalar_float << ",\n"
        << "  \"dispatched_float_rows_per_sec\": " << dispatched_float
        << ",\n"
        << "  \"quantized_rows_per_sec\": " << quantized_rows << ",\n"
        << "  \"dispatched_vs_scalar_speedup\": " << dispatch_speedup
        << ",\n"
        << "  \"quantized_vs_scalar_speedup\": " << quant_speedup << ",\n"
        << "  \"min_speedup_gate\": " << min_speedup << ",\n"
        << "  \"verdict_bit_identity\": " << (bit_identical ? "true" : "false")
        << ",\n"
        << "  \"quantized_flip_fraction\": " << flip_fraction << ",\n"
        << "  \"gates_passed\": " << (failed ? "false" : "true") << "\n"
        << "}\n";
    const Status json_status = WriteFileAtomic(json_path, out.str());
    if (!json_status.ok()) {
      std::fprintf(stderr, "FAIL: writing %s: %s\n", json_path,
                   json_status.ToString().c_str());
      failed = true;
    }
    std::printf("wrote %s\n", json_path);
  }

  std::printf("\n=== ValidationService scaling (concurrent clients) ===\n");
  ValidationServiceOptions service_options;
  ValidationService service(std::move(*pipeline), service_options);
  std::printf("%10s  %14s  %14s\n", "clients", "rows/s", "per-client");
  for (const int clients : {1, 2, 4, 8}) {
    const int rounds = fast ? 2 : 4;
    Stopwatch timer;
    std::vector<std::thread> workers;
    workers.reserve(static_cast<size_t>(clients));
    for (int t = 0; t < clients; ++t) {
      workers.emplace_back([&] {
        for (int r = 0; r < rounds; ++r) {
          BatchVerdict verdict = service.ValidateMatrix(matrix);
          (void)verdict;
        }
      });
    }
    for (std::thread& t : workers) t.join();
    const double seconds = timer.ElapsedSeconds();
    const double total_rows =
        static_cast<double>(clients) * rounds * eval_rows;
    std::printf("%10d  %14.0f  %14.0f\n", clients, total_rows / seconds,
                total_rows / seconds / clients);
  }
  std::printf("(verdicts are identical to serial validation by construction)\n");
  return failed ? 1 : 0;
}

}  // namespace
}  // namespace dquag

int main(int argc, char** argv) {
  dquag::SetLogLevel(dquag::LogLevel::kWarning);
  const char* json_path = nullptr;
  std::string json_storage;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      json_path = "BENCH_inference.json";
    } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_storage = argv[i] + 7;
      json_path = json_storage.c_str();
    }
  }
  return dquag::RunAll(json_path);
}
