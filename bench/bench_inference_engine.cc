// Tape vs engine inference throughput on the Figure-4 data shapes.
//
// Phase 2 is the deployed hot path; this bench quantifies what the
// tape-free engine buys over running the same model through the autograd
// ops under NoGradGuard (per-op tensor allocation + zero-fill + shared_ptr
// tape nodes). Part 1 compares single-client reconstruction throughput
// across batch sizes; part 2 drives a ValidationService with increasing
// numbers of concurrent client threads (micro-batched fan-out across the
// process pool).
//
// DQUAG_BENCH_FAST=1 shrinks the workload for smoke runs.

#include <cstdio>
#include <memory>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "core/validation_service.h"
#include "data/generators.h"
#include "engine/inference_context.h"
#include "util/logging.h"
#include "util/stopwatch.h"

namespace dquag {
namespace {

void RunAll() {
  const bool fast = bench::FastMode();
  const int64_t train_rows = bench::EnvInt("DQUAG_ROWS", fast ? 1000 : 3000);
  const int64_t epochs = bench::EnvInt("DQUAG_EPOCHS", fast ? 3 : 10);
  const int64_t eval_rows =
      bench::EnvInt("DQUAG_ENGINE_EVAL_ROWS", fast ? 20000 : 100000);

  // Train on the Figure-4 shape: NY Taxi, 18 columns.
  Rng rng(41);
  Table clean = datasets::GenerateNyTaxi(train_rows, rng, /*dims=*/18);
  DquagPipelineOptions options;
  options.config.epochs = epochs;
  options.config.seed = 41;
  auto pipeline = std::make_unique<DquagPipeline>(std::move(options));
  DQUAG_CHECK(pipeline->Fit(clean).ok());

  Rng eval_rng(97);
  Table eval = datasets::GenerateNyTaxi(eval_rows, eval_rng, /*dims=*/18);
  const Tensor matrix = pipeline->preprocessor().Transform(eval);
  const int64_t d = matrix.dim(1);
  const DquagModel& model = pipeline->model();

  std::printf("=== tape vs engine: validation-head reconstruction ===\n");
  std::printf("(%lld eval rows, 18 columns, hidden %lld, single client)\n",
              static_cast<long long>(eval_rows),
              static_cast<long long>(model.encoder().config().hidden_dim));
  std::printf("%10s  %14s  %14s  %8s\n", "batch", "tape rows/s",
              "engine rows/s", "speedup");
  // 512 is the service micro-batch default, 2048 the validator chunk
  // default, 8192 a large request.
  for (const int64_t batch : {512LL, 2048LL, 8192LL}) {
    auto run_chunks = [&](auto&& body) {
      for (int64_t start = 0; start < eval_rows; start += batch) {
        const int64_t end = std::min(eval_rows, start + batch);
        body(start, end);
      }
    };
    // Tape: NoGrad autograd ops, allocating per op (the pre-engine path).
    Stopwatch tape_timer;
    run_chunks([&](int64_t start, int64_t end) {
      Tensor slice({end - start, d});
      std::copy(matrix.data() + start * d, matrix.data() + end * d,
                slice.data());
      Tensor out = model.ReconstructValidationTape(slice);
      (void)out;
    });
    const double tape_s = tape_timer.ElapsedSeconds();

    // Engine: fused kernels over a reused per-thread workspace.
    InferenceContext& ctx = InferenceContext::ThreadLocal();
    Stopwatch engine_timer;
    run_chunks([&](int64_t start, int64_t end) {
      ctx.Rewind();
      Tensor& slice = ctx.Acquire({end - start, d});
      std::copy(matrix.data() + start * d, matrix.data() + end * d,
                slice.data());
      const Tensor& out = model.InferValidation(slice, ctx);
      (void)out;
    });
    const double engine_s = engine_timer.ElapsedSeconds();

    std::printf("%10lld  %14.0f  %14.0f  %7.2fx\n",
                static_cast<long long>(batch), eval_rows / tape_s,
                eval_rows / engine_s, tape_s / engine_s);
  }

  std::printf("\n=== ValidationService scaling (concurrent clients) ===\n");
  ValidationServiceOptions service_options;
  ValidationService service(std::move(*pipeline), service_options);
  std::printf("%10s  %14s  %14s\n", "clients", "rows/s", "per-client");
  for (const int clients : {1, 2, 4, 8}) {
    const int rounds = fast ? 2 : 4;
    Stopwatch timer;
    std::vector<std::thread> workers;
    workers.reserve(static_cast<size_t>(clients));
    for (int t = 0; t < clients; ++t) {
      workers.emplace_back([&] {
        for (int r = 0; r < rounds; ++r) {
          BatchVerdict verdict = service.ValidateMatrix(matrix);
          (void)verdict;
        }
      });
    }
    for (std::thread& t : workers) t.join();
    const double seconds = timer.ElapsedSeconds();
    const double total_rows =
        static_cast<double>(clients) * rounds * eval_rows;
    std::printf("%10d  %14.0f  %14.0f\n", clients, total_rows / seconds,
                total_rows / seconds / clients);
  }
  std::printf("(verdicts are identical to serial validation by construction)\n");
}

}  // namespace
}  // namespace dquag

int main() {
  dquag::SetLogLevel(dquag::LogLevel::kWarning);
  dquag::RunAll();
  return 0;
}
