// google-benchmark microbenchmarks for the numeric substrate: tensor ops,
// GNN layer forwards, and end-to-end model inference throughput.

#include <benchmark/benchmark.h>

#include "core/model.h"
#include "gnn/encoder.h"
#include "nn/feature_tokenizer.h"
#include "tensor/tensor_ops.h"
#include "util/rng.h"

namespace dquag {
namespace {

void BM_MatMul2D(benchmark::State& state) {
  const int64_t m = state.range(0);
  Rng rng(1);
  Tensor a = Tensor::Randn({m, 64}, rng);
  Tensor b = Tensor::Randn({64, 64}, rng);
  for (auto _ : state) {
    Tensor c = MatMul(a, b);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * m * 64 * 64 * 2);
}
BENCHMARK(BM_MatMul2D)->Arg(128)->Arg(1536)->Arg(8192);

void BM_MatMulTransA(benchmark::State& state) {
  Rng rng(1);
  Tensor a = Tensor::Randn({1536, 64}, rng);
  Tensor g = Tensor::Randn({1536, 64}, rng);
  for (auto _ : state) {
    Tensor c = MatMulTransA(a, g);
    benchmark::DoNotOptimize(c.data());
  }
}
BENCHMARK(BM_MatMulTransA);

void BM_BroadcastMul(benchmark::State& state) {
  Rng rng(1);
  Tensor a = Tensor::Randn({128, 12, 64}, rng);
  Tensor b = Tensor::Randn({12, 64}, rng);
  for (auto _ : state) {
    Tensor c = Mul(a, b);
    benchmark::DoNotOptimize(c.data());
  }
}
BENCHMARK(BM_BroadcastMul);

void BM_GatherScatter(benchmark::State& state) {
  Rng rng(1);
  FeatureGraph graph = FeatureGraph::Complete(12);
  Tensor h = Tensor::Randn({128, 12, 64}, rng);
  for (auto _ : state) {
    Tensor gathered = GatherAxis1(h, graph.src());
    Tensor scattered = ScatterAddAxis1(gathered, graph.dst(), 12);
    benchmark::DoNotOptimize(scattered.data());
  }
}
BENCHMARK(BM_GatherScatter);

void BM_SegmentSoftmax(benchmark::State& state) {
  Rng rng(1);
  FeatureGraph graph = FeatureGraph::Complete(12);
  const int64_t num_arcs = graph.num_arcs();
  Tensor scores = Tensor::Randn({128, num_arcs}, rng);
  for (auto _ : state) {
    Tensor alpha = SegmentSoftmaxAxis1(scores, graph.dst(), 12);
    benchmark::DoNotOptimize(alpha.data());
  }
}
BENCHMARK(BM_SegmentSoftmax);

/// One layer forward per encoder family (inference mode, batch 128).
void BM_LayerForward(benchmark::State& state) {
  const int64_t kind = state.range(0);
  Rng rng(1);
  NoGradGuard no_grad;
  FeatureGraph graph = FeatureGraph::Chain(12);
  VarPtr h = MakeVar(Tensor::Randn({128, 12, 64}, rng));
  std::unique_ptr<GnnLayer> layer;
  switch (kind) {
    case 0: layer = std::make_unique<GcnLayer>(graph, 64, 64, rng); break;
    case 1: layer = std::make_unique<GatLayer>(graph, 64, 64, 1, rng); break;
    default: layer = std::make_unique<GinLayer>(graph, 64, 64, rng); break;
  }
  for (auto _ : state) {
    VarPtr out = layer->Forward(h);
    benchmark::DoNotOptimize(out->value().data());
  }
  state.SetLabel(kind == 0 ? "GCN" : kind == 1 ? "GAT" : "GIN");
}
BENCHMARK(BM_LayerForward)->Arg(0)->Arg(1)->Arg(2);

void BM_ModelInference(benchmark::State& state) {
  const int64_t batch = state.range(0);
  Rng rng(1);
  FeatureGraph graph = FeatureGraph::Complete(12);
  DquagConfig config;
  DquagModel model(graph, config, rng);
  Tensor x = Tensor::RandUniform({batch, 12}, rng, 0.0f, 1.0f);
  for (auto _ : state) {
    Tensor out = model.ReconstructValidation(x);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_ModelInference)->Arg(128)->Arg(2048);

}  // namespace
}  // namespace dquag

BENCHMARK_MAIN();
