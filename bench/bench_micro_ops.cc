// google-benchmark microbenchmarks for the numeric substrate: tensor ops,
// GNN layer forwards, end-to-end model inference throughput, and the SIMD
// kernel table (scalar vs dispatched, with checksum parity).

#include <benchmark/benchmark.h>

#include <cstring>
#include <vector>

#include "core/model.h"
#include "gnn/encoder.h"
#include "nn/feature_tokenizer.h"
#include "tensor/quantized.h"
#include "tensor/simd.h"
#include "tensor/tensor_ops.h"
#include "util/rng.h"

namespace dquag {
namespace {

void BM_MatMul2D(benchmark::State& state) {
  const int64_t m = state.range(0);
  Rng rng(1);
  Tensor a = Tensor::Randn({m, 64}, rng);
  Tensor b = Tensor::Randn({64, 64}, rng);
  for (auto _ : state) {
    Tensor c = MatMul(a, b);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * m * 64 * 64 * 2);
}
BENCHMARK(BM_MatMul2D)->Arg(128)->Arg(1536)->Arg(8192);

void BM_MatMulTransA(benchmark::State& state) {
  Rng rng(1);
  Tensor a = Tensor::Randn({1536, 64}, rng);
  Tensor g = Tensor::Randn({1536, 64}, rng);
  for (auto _ : state) {
    Tensor c = MatMulTransA(a, g);
    benchmark::DoNotOptimize(c.data());
  }
}
BENCHMARK(BM_MatMulTransA);

void BM_BroadcastMul(benchmark::State& state) {
  Rng rng(1);
  Tensor a = Tensor::Randn({128, 12, 64}, rng);
  Tensor b = Tensor::Randn({12, 64}, rng);
  for (auto _ : state) {
    Tensor c = Mul(a, b);
    benchmark::DoNotOptimize(c.data());
  }
}
BENCHMARK(BM_BroadcastMul);

void BM_GatherScatter(benchmark::State& state) {
  Rng rng(1);
  FeatureGraph graph = FeatureGraph::Complete(12);
  Tensor h = Tensor::Randn({128, 12, 64}, rng);
  for (auto _ : state) {
    Tensor gathered = GatherAxis1(h, graph.src());
    Tensor scattered = ScatterAddAxis1(gathered, graph.dst(), 12);
    benchmark::DoNotOptimize(scattered.data());
  }
}
BENCHMARK(BM_GatherScatter);

void BM_SegmentSoftmax(benchmark::State& state) {
  Rng rng(1);
  FeatureGraph graph = FeatureGraph::Complete(12);
  const int64_t num_arcs = graph.num_arcs();
  Tensor scores = Tensor::Randn({128, num_arcs}, rng);
  for (auto _ : state) {
    Tensor alpha = SegmentSoftmaxAxis1(scores, graph.dst(), 12);
    benchmark::DoNotOptimize(alpha.data());
  }
}
BENCHMARK(BM_SegmentSoftmax);

/// One layer forward per encoder family (inference mode, batch 128).
void BM_LayerForward(benchmark::State& state) {
  const int64_t kind = state.range(0);
  Rng rng(1);
  NoGradGuard no_grad;
  FeatureGraph graph = FeatureGraph::Chain(12);
  VarPtr h = MakeVar(Tensor::Randn({128, 12, 64}, rng));
  std::unique_ptr<GnnLayer> layer;
  switch (kind) {
    case 0: layer = std::make_unique<GcnLayer>(graph, 64, 64, rng); break;
    case 1: layer = std::make_unique<GatLayer>(graph, 64, 64, 1, rng); break;
    default: layer = std::make_unique<GinLayer>(graph, 64, 64, rng); break;
  }
  for (auto _ : state) {
    VarPtr out = layer->Forward(h);
    benchmark::DoNotOptimize(out->value().data());
  }
  state.SetLabel(kind == 0 ? "GCN" : kind == 1 ? "GAT" : "GIN");
}
BENCHMARK(BM_LayerForward)->Arg(0)->Arg(1)->Arg(2);

void BM_ModelInference(benchmark::State& state) {
  const int64_t batch = state.range(0);
  Rng rng(1);
  FeatureGraph graph = FeatureGraph::Complete(12);
  DquagConfig config;
  DquagModel model(graph, config, rng);
  Tensor x = Tensor::RandUniform({batch, 12}, rng, 0.0f, 1.0f);
  for (auto _ : state) {
    Tensor out = model.ReconstructValidation(x);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_ModelInference)->Arg(128)->Arg(2048);

// ---- SIMD kernel table: scalar (Arg 0) vs dispatched (Arg 1) --------------
//
// Every benchmark first runs both tables on identical inputs and compares
// output bytes; a mismatch aborts the benchmark via SkipWithError, so these
// double as a continuous bit-identity check at serving shapes. Shapes mirror
// Phase-2 inference: 256-row engine blocks x 18 feature nodes = 4608 GEMM
// rows at hidden width 64.

constexpr int64_t kRows = 4608;
constexpr int64_t kDim = 64;

const simd::SimdKernelTable& TableFor(const benchmark::State& state) {
  return state.range(0) == 0 ? simd::ScalarKernels()
                             : simd::BestSupportedKernels();
}

/// memcmp-equality of two float buffers, reported through the benchmark.
bool ParityOk(benchmark::State& state, const float* a, const float* b,
              int64_t n) {
  if (std::memcmp(a, b, static_cast<size_t>(n) * sizeof(float)) != 0) {
    state.SkipWithError("checksum mismatch vs scalar table");
    return false;
  }
  return true;
}

void BM_SimdMatMul(benchmark::State& state) {
  const simd::SimdKernelTable& kt = TableFor(state);
  Rng rng(11);
  Tensor a = Tensor::Randn({kRows, kDim}, rng);
  Tensor b = Tensor::Randn({kDim, kDim}, rng);
  std::vector<float> ref(kRows * kDim, 0.0f), got(kRows * kDim, 0.0f);
  simd::ScalarKernels().matmul(a.data(), b.data(), ref.data(), kRows, kDim,
                               kDim);
  kt.matmul(a.data(), b.data(), got.data(), kRows, kDim, kDim);
  if (!ParityOk(state, ref.data(), got.data(), kRows * kDim)) return;
  for (auto _ : state) {
    kt.matmul(a.data(), b.data(), got.data(), kRows, kDim, kDim);
    benchmark::DoNotOptimize(got.data());
  }
  state.SetItemsProcessed(state.iterations() * kRows);
  state.SetLabel(kt.name);
}
BENCHMARK(BM_SimdMatMul)->Arg(0)->Arg(1);

void BM_SimdMatMulTransA(benchmark::State& state) {
  const simd::SimdKernelTable& kt = TableFor(state);
  Rng rng(12);
  Tensor a = Tensor::Randn({kRows, kDim}, rng);
  Tensor g = Tensor::Randn({kRows, kDim}, rng);
  std::vector<float> ref(kDim * kDim, 0.0f), got(kDim * kDim, 0.0f);
  simd::ScalarKernels().matmul_trans_a(a.data(), g.data(), ref.data(), kRows,
                                       kDim, kDim);
  kt.matmul_trans_a(a.data(), g.data(), got.data(), kRows, kDim, kDim);
  if (!ParityOk(state, ref.data(), got.data(), kDim * kDim)) return;
  for (auto _ : state) {
    kt.matmul_trans_a(a.data(), g.data(), got.data(), kRows, kDim, kDim);
    benchmark::DoNotOptimize(got.data());
  }
  state.SetItemsProcessed(state.iterations() * kRows);
  state.SetLabel(kt.name);
}
BENCHMARK(BM_SimdMatMulTransA)->Arg(0)->Arg(1);

void BM_SimdMatMulTransB(benchmark::State& state) {
  const simd::SimdKernelTable& kt = TableFor(state);
  Rng rng(13);
  Tensor a = Tensor::Randn({kRows, kDim}, rng);
  Tensor b = Tensor::Randn({kDim, kDim}, rng);
  std::vector<float> ref(kRows * kDim, 0.0f), got(kRows * kDim, 0.0f);
  simd::ScalarKernels().matmul_trans_b(a.data(), b.data(), ref.data(), kRows,
                                       kDim, kDim);
  kt.matmul_trans_b(a.data(), b.data(), got.data(), kRows, kDim, kDim);
  if (!ParityOk(state, ref.data(), got.data(), kRows * kDim)) return;
  for (auto _ : state) {
    kt.matmul_trans_b(a.data(), b.data(), got.data(), kRows, kDim, kDim);
    benchmark::DoNotOptimize(got.data());
  }
  state.SetItemsProcessed(state.iterations() * kRows);
  state.SetLabel(kt.name);
}
BENCHMARK(BM_SimdMatMulTransB)->Arg(0)->Arg(1);

void BM_SimdDualMatVec(benchmark::State& state) {
  const simd::SimdKernelTable& kt = TableFor(state);
  Rng rng(14);
  Tensor x = Tensor::Randn({kRows, kDim}, rng);
  Tensor w1 = Tensor::Randn({kDim}, rng);
  Tensor w2 = Tensor::Randn({kDim}, rng);
  std::vector<float> r1(kRows), r2(kRows), g1(kRows), g2(kRows);
  simd::ScalarKernels().dual_matvec(x.data(), w1.data(), w2.data(), r1.data(),
                                    r2.data(), kRows, kDim);
  kt.dual_matvec(x.data(), w1.data(), w2.data(), g1.data(), g2.data(), kRows,
                 kDim);
  if (!ParityOk(state, r1.data(), g1.data(), kRows) ||
      !ParityOk(state, r2.data(), g2.data(), kRows)) {
    return;
  }
  for (auto _ : state) {
    kt.dual_matvec(x.data(), w1.data(), w2.data(), g1.data(), g2.data(),
                   kRows, kDim);
    benchmark::DoNotOptimize(g1.data());
  }
  state.SetItemsProcessed(state.iterations() * kRows);
  state.SetLabel(kt.name);
}
BENCHMARK(BM_SimdDualMatVec)->Arg(0)->Arg(1);

void BM_SimdReadoutDot(benchmark::State& state) {
  const simd::SimdKernelTable& kt = TableFor(state);
  constexpr int64_t d = 18;
  constexpr int64_t batch = 256;
  Rng rng(15);
  Tensor z = Tensor::Randn({batch, d, kDim}, rng);
  Tensor w = Tensor::Randn({d, kDim}, rng);
  Tensor bias = Tensor::Randn({d}, rng);
  std::vector<float> ref(batch * d), got(batch * d);
  simd::ScalarKernels().readout_dot(z.data(), w.data(), bias.data(),
                                    ref.data(), batch, d, kDim);
  kt.readout_dot(z.data(), w.data(), bias.data(), got.data(), batch, d, kDim);
  if (!ParityOk(state, ref.data(), got.data(), batch * d)) return;
  for (auto _ : state) {
    kt.readout_dot(z.data(), w.data(), bias.data(), got.data(), batch, d,
                   kDim);
    benchmark::DoNotOptimize(got.data());
  }
  state.SetItemsProcessed(state.iterations() * batch);
  state.SetLabel(kt.name);
}
BENCHMARK(BM_SimdReadoutDot)->Arg(0)->Arg(1);

void BM_SimdExp(benchmark::State& state) {
  const simd::SimdKernelTable& kt = TableFor(state);
  const int64_t n = kRows * kDim;
  Rng rng(16);
  Tensor x = Tensor::RandUniform({n}, rng, -6.0f, 6.0f);
  std::vector<float> ref(n), got(n);
  std::memcpy(ref.data(), x.data(), n * sizeof(float));
  std::memcpy(got.data(), x.data(), n * sizeof(float));
  simd::ScalarKernels().exp_inplace(ref.data(), n);
  kt.exp_inplace(got.data(), n);
  if (!ParityOk(state, ref.data(), got.data(), n)) return;
  for (auto _ : state) {
    // exp is in place; the refill memcpy is charged to both variants alike.
    std::memcpy(got.data(), x.data(), n * sizeof(float));
    kt.exp_inplace(got.data(), n);
    benchmark::DoNotOptimize(got.data());
  }
  state.SetItemsProcessed(state.iterations() * n);
  state.SetLabel(kt.name);
}
BENCHMARK(BM_SimdExp)->Arg(0)->Arg(1);

void BM_SimdElu(benchmark::State& state) {
  const simd::SimdKernelTable& kt = TableFor(state);
  const int64_t n = kRows * kDim;
  Rng rng(17);
  Tensor x = Tensor::RandUniform({n}, rng, -4.0f, 4.0f);
  std::vector<float> ref(n), got(n);
  simd::ScalarKernels().elu(x.data(), ref.data(), n, 1.0f);
  kt.elu(x.data(), got.data(), n, 1.0f);
  if (!ParityOk(state, ref.data(), got.data(), n)) return;
  for (auto _ : state) {
    kt.elu(x.data(), got.data(), n, 1.0f);
    benchmark::DoNotOptimize(got.data());
  }
  state.SetItemsProcessed(state.iterations() * n);
  state.SetLabel(kt.name);
}
BENCHMARK(BM_SimdElu)->Arg(0)->Arg(1);

void BM_SimdAxpy(benchmark::State& state) {
  const simd::SimdKernelTable& kt = TableFor(state);
  const int64_t n = kRows * kDim;
  Rng rng(18);
  Tensor x = Tensor::Randn({n}, rng);
  std::vector<float> ref(n, 0.5f), got(n, 0.5f);
  simd::ScalarKernels().axpy(x.data(), 0.37f, ref.data(), n);
  kt.axpy(x.data(), 0.37f, got.data(), n);
  if (!ParityOk(state, ref.data(), got.data(), n)) return;
  for (auto _ : state) {
    kt.axpy(x.data(), 1e-6f, got.data(), n);  // tiny s: values stay finite
    benchmark::DoNotOptimize(got.data());
  }
  state.SetItemsProcessed(state.iterations() * n);
  state.SetLabel(kt.name);
}
BENCHMARK(BM_SimdAxpy)->Arg(0)->Arg(1);

void BM_SimdAddProduct(benchmark::State& state) {
  const simd::SimdKernelTable& kt = TableFor(state);
  const int64_t n = kRows * kDim;
  Rng rng(19);
  Tensor a = Tensor::Randn({n}, rng);
  Tensor b = Tensor::Randn({n}, rng);
  std::vector<float> ref(n, 0.5f), got(n, 0.5f);
  simd::ScalarKernels().add_product(a.data(), b.data(), 0.37f, ref.data(), n);
  kt.add_product(a.data(), b.data(), 0.37f, got.data(), n);
  if (!ParityOk(state, ref.data(), got.data(), n)) return;
  for (auto _ : state) {
    kt.add_product(a.data(), b.data(), 1e-6f, got.data(), n);
    benchmark::DoNotOptimize(got.data());
  }
  state.SetItemsProcessed(state.iterations() * n);
  state.SetLabel(kt.name);
}
BENCHMARK(BM_SimdAddProduct)->Arg(0)->Arg(1);

void BM_SimdSegmentSoftmaxCsr(benchmark::State& state) {
  const simd::SimdKernelTable& kt = TableFor(state);
  constexpr int64_t d = 18;
  FeatureGraph graph = FeatureGraph::Complete(d);
  graph.AddSelfLoops();
  const FeatureGraph::CsrByDst& csr = graph.csr_by_dst();
  const int64_t num_arcs = graph.num_arcs();
  Rng rng(20);
  Tensor scores = Tensor::Randn({num_arcs}, rng);
  std::vector<float> ref(num_arcs), got(num_arcs);
  std::memcpy(ref.data(), scores.data(), num_arcs * sizeof(float));
  std::memcpy(got.data(), scores.data(), num_arcs * sizeof(float));
  simd::ScalarKernels().segment_softmax_csr(ref.data(), csr.offsets.data(),
                                            static_cast<size_t>(d),
                                            csr.order.data());
  kt.segment_softmax_csr(got.data(), csr.offsets.data(),
                         static_cast<size_t>(d), csr.order.data());
  if (!ParityOk(state, ref.data(), got.data(), num_arcs)) return;
  for (auto _ : state) {
    std::memcpy(got.data(), scores.data(), num_arcs * sizeof(float));
    kt.segment_softmax_csr(got.data(), csr.offsets.data(),
                           static_cast<size_t>(d), csr.order.data());
    benchmark::DoNotOptimize(got.data());
  }
  state.SetItemsProcessed(state.iterations() * num_arcs);
  state.SetLabel(kt.name);
}
BENCHMARK(BM_SimdSegmentSoftmaxCsr)->Arg(0)->Arg(1);

void BM_SimdQuantizeRows(benchmark::State& state) {
  const simd::SimdKernelTable& kt = TableFor(state);
  Rng rng(21);
  Tensor x = Tensor::Randn({kRows, kDim}, rng);
  std::vector<int8_t> qr(kRows * kDim), qg(kRows * kDim);
  std::vector<float> sr(kRows), sg(kRows);
  simd::ScalarKernels().quantize_rows(x.data(), kRows, kDim, kDim, qr.data(),
                                      sr.data());
  kt.quantize_rows(x.data(), kRows, kDim, kDim, qg.data(), sg.data());
  if (std::memcmp(qr.data(), qg.data(), qr.size()) != 0 ||
      !ParityOk(state, sr.data(), sg.data(), kRows)) {
    state.SkipWithError("checksum mismatch vs scalar table");
    return;
  }
  for (auto _ : state) {
    kt.quantize_rows(x.data(), kRows, kDim, kDim, qg.data(), sg.data());
    benchmark::DoNotOptimize(qg.data());
  }
  state.SetItemsProcessed(state.iterations() * kRows);
  state.SetLabel(kt.name);
}
BENCHMARK(BM_SimdQuantizeRows)->Arg(0)->Arg(1);

void BM_SimdQgemm(benchmark::State& state) {
  const simd::SimdKernelTable& kt = TableFor(state);
  Rng rng(22);
  Tensor x = Tensor::Randn({kRows, kDim}, rng);
  Tensor w = Tensor::Randn({kDim, kDim}, rng);
  Tensor bias = Tensor::Randn({kDim}, rng);
  QuantizedWeight qw = QuantizeWeight(w);
  PackQuantizedWeight(qw);
  std::vector<int8_t> xq(kRows * kDim);
  std::vector<float> xs(kRows);
  simd::ScalarKernels().quantize_rows(x.data(), kRows, kDim, kDim, xq.data(),
                                      xs.data());
  std::vector<float> ref(kRows * kDim), got(kRows * kDim);
  simd::ScalarKernels().qgemm(xq.data(), xs.data(), qw.packed.data(),
                              qw.scales.data(), bias.data(), ref.data(),
                              kRows, kDim, kDim);
  kt.qgemm(xq.data(), xs.data(), qw.packed.data(), qw.scales.data(),
           bias.data(), got.data(), kRows, kDim, kDim);
  if (!ParityOk(state, ref.data(), got.data(), kRows * kDim)) return;
  for (auto _ : state) {
    kt.qgemm(xq.data(), xs.data(), qw.packed.data(), qw.scales.data(),
             bias.data(), got.data(), kRows, kDim, kDim);
    benchmark::DoNotOptimize(got.data());
  }
  state.SetItemsProcessed(state.iterations() * kRows);
  state.SetLabel(kt.name);
}
BENCHMARK(BM_SimdQgemm)->Arg(0)->Arg(1);

}  // namespace
}  // namespace dquag

BENCHMARK_MAIN();
