// Phase-1 training throughput: serial tape vs the data-parallel,
// allocation-free fast path.
//
// Fits the same model on the same synthetic NY-Taxi matrix twice — once
// with train_shards=1 (the single-tape reference path) and once with the
// sharded path on an N-thread pool — and reports wall-clock, rows/sec, the
// speedup, and the numerical drift between the two runs (epoch losses and
// calibrated threshold must agree within 1e-4; thread-count invariance of
// the sharded path itself is exact and covered by trainer_parallel_test).
//
// --json[=path] additionally writes a BENCH_training.json machine-readable
// summary (default path: BENCH_training.json in the working directory).
// DQUAG_BENCH_FAST=1 shrinks the workload; DQUAG_TRAIN_THREADS sets the
// parallel pool size (default 8 — note speedup is bounded by physical
// cores, reported as hardware_concurrency).

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <sstream>
#include <string>
#include <thread>

#include "bench_util.h"
#include "util/atomic_file.h"
#include "core/pipeline.h"
#include "core/trainer.h"
#include "data/generators.h"
#include "util/logging.h"
#include "util/stopwatch.h"

namespace dquag {
namespace {

struct FitResult {
  TrainingReport report;
  double seconds = 0.0;
};

FitResult FitOnce(const Tensor& matrix, const FeatureGraph& graph,
                  DquagConfig config, int64_t train_shards,
                  ThreadPool* pool) {
  config.train_shards = train_shards;
  Rng rng(config.seed);
  DquagModel model(graph, config, rng);
  Trainer trainer(&model, config);
  trainer.set_thread_pool(pool);
  Stopwatch timer;
  FitResult result;
  result.report = trainer.Fit(matrix);
  result.seconds = timer.ElapsedSeconds();
  return result;
}

int RunAll(const char* json_path) {
  const bool fast = bench::FastMode();
  const int64_t rows = bench::EnvInt("DQUAG_ROWS", fast ? 2000 : 20000);
  const int64_t epochs = bench::EnvInt("DQUAG_EPOCHS", fast ? 2 : 10);
  const int64_t threads = bench::EnvInt("DQUAG_TRAIN_THREADS", 8);
  const int64_t shards = bench::EnvInt("DQUAG_TRAIN_SHARDS", 8);

  // Paper-scale config on the Figure-4 dataset shape: NY Taxi, 18 columns.
  Rng data_rng(41);
  Table clean = datasets::GenerateNyTaxi(rows, data_rng, /*dims=*/18);
  DquagPipelineOptions options;
  TablePreprocessor preprocessor;
  preprocessor.Fit(clean);
  const Tensor matrix = preprocessor.Transform(clean);
  auto graph_or = FeatureGraph::FromRelationships(
      clean.schema().Names(),
      MineRelationships(TableToMinerColumns(clean), options.miner));
  DQUAG_CHECK(graph_or.ok());
  const FeatureGraph graph = std::move(graph_or).value();

  DquagConfig config;
  config.epochs = epochs;
  config.seed = 41;

  std::printf("=== Trainer::Fit: serial tape vs data-parallel fast path ===\n");
  std::printf(
      "(%lld rows, %lld cols, %lld epochs, batch %lld, %lld shards, "
      "%lld-thread pool, %u hardware threads)\n",
      static_cast<long long>(rows), static_cast<long long>(matrix.dim(1)),
      static_cast<long long>(epochs),
      static_cast<long long>(config.batch_size),
      static_cast<long long>(shards), static_cast<long long>(threads),
      std::thread::hardware_concurrency());

  const FitResult serial =
      FitOnce(matrix, graph, config, /*train_shards=*/1, nullptr);
  ThreadPool pool(static_cast<size_t>(threads));
  const FitResult parallel =
      FitOnce(matrix, graph, config, shards, &pool);

  const double rows_per_sec_serial =
      static_cast<double>(rows) * epochs / serial.seconds;
  const double rows_per_sec_parallel =
      static_cast<double>(rows) * epochs / parallel.seconds;
  const double speedup = serial.seconds / parallel.seconds;

  double max_loss_delta = 0.0;
  const size_t num_epochs = std::min(serial.report.epoch_losses.size(),
                                     parallel.report.epoch_losses.size());
  for (size_t e = 0; e < num_epochs; ++e) {
    max_loss_delta = std::max(
        max_loss_delta, std::abs(serial.report.epoch_losses[e] -
                                 parallel.report.epoch_losses[e]));
  }
  const double threshold_delta =
      std::abs(serial.report.error_statistics.threshold -
               parallel.report.error_statistics.threshold);

  std::printf("%18s  %10s  %14s\n", "path", "seconds", "train rows/s");
  std::printf("%18s  %10.3f  %14.0f\n", "serial (1 shard)", serial.seconds,
              rows_per_sec_serial);
  std::printf("%18s  %10.3f  %14.0f\n", "parallel", parallel.seconds,
              rows_per_sec_parallel);
  std::printf("speedup: %.2fx   max epoch-loss delta: %.2e   "
              "threshold delta: %.2e\n",
              speedup, max_loss_delta, threshold_delta);

  if (json_path != nullptr) {
    std::ostringstream out;
    out << "{\n"
        << "  \"rows\": " << rows << ",\n"
        << "  \"columns\": " << matrix.dim(1) << ",\n"
        << "  \"epochs\": " << epochs << ",\n"
        << "  \"batch_size\": " << config.batch_size << ",\n"
        << "  \"train_shards\": " << shards << ",\n"
        << "  \"threads\": " << threads << ",\n"
        << "  \"hardware_concurrency\": "
        << std::thread::hardware_concurrency() << ",\n"
        << "  \"serial_seconds\": " << serial.seconds << ",\n"
        << "  \"parallel_seconds\": " << parallel.seconds << ",\n"
        << "  \"rows_per_sec_1t\": " << rows_per_sec_serial << ",\n"
        << "  \"rows_per_sec_nt\": " << rows_per_sec_parallel << ",\n"
        << "  \"speedup\": " << speedup << ",\n"
        << "  \"max_epoch_loss_delta\": " << max_loss_delta << ",\n"
        << "  \"threshold_delta\": " << threshold_delta << "\n"
        << "}\n";
    const Status json_status = WriteFileAtomic(json_path, out.str());
    if (!json_status.ok()) {
      std::fprintf(stderr, "FAIL: writing %s: %s\n", json_path,
                   json_status.ToString().c_str());
      return 1;
    }
    std::printf("wrote %s\n", json_path);
  }

  // Drift beyond float reassociation would mean the sharded loss/gradient
  // decomposition is wrong — fail loudly so CI catches it.
  if (max_loss_delta > 1e-4 || threshold_delta > 1e-4) {
    std::fprintf(stderr,
                 "FAIL: parallel training drifted from the serial path\n");
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace dquag

int main(int argc, char** argv) {
  dquag::SetLogLevel(dquag::LogLevel::kWarning);
  const char* json_path = nullptr;
  std::string json_storage;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      json_path = "BENCH_training.json";
    } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_storage = argv[i] + 7;
      json_path = json_storage.c_str();
    }
  }
  return dquag::RunAll(json_path);
}
