// Reproduces Table 2: encoder-architecture comparison (§4.4).
//
// For each encoder in {Graph2Vec, GCN, GCN+GAT, GCN+GIN, GAT+GIN} a model is
// trained on the clean Airbnb / Bicycle data (4 layers, hidden 64, lr 0.01,
// batch 128) and the metric is the DIFFERENCE (percentage points) between
// the fraction of instances flagged on dirty data and on clean data —
// larger = better separation of clean from dirty.

#include <cstdio>
#include <functional>
#include <vector>

#include "bench_util.h"
#include "data/generators.h"
#include "eval/experiment.h"
#include "util/logging.h"
#include "util/stopwatch.h"

namespace dquag {
namespace {

double FlaggedFraction(const DquagPipeline& pipeline, const Table& table) {
  return pipeline.Validate(table).flagged_fraction;
}

void RunDataset(
    const std::string& name,
    const std::function<Table(int64_t, Rng&)>& generate_clean,
    const std::function<Table(const Table&, Rng&, std::vector<bool>*)>&
        corrupt,
    int64_t rows, int64_t epochs, uint64_t seed) {
  std::printf("\n=== Table 2: %s ===\n", name.c_str());
  std::printf("%-12s %12s %12s %14s\n", "Encoder", "clean flag%",
              "dirty flag%", "difference pp");

  const std::vector<EncoderKind> encoders = {
      EncoderKind::kGraph2Vec, EncoderKind::kGcn, EncoderKind::kGcnGat,
      EncoderKind::kGcnGin, EncoderKind::kGatGin};

  Rng rng(seed);
  const Table train_clean = generate_clean(rows, rng);
  const Table& test_clean = train_clean;
  const Table dirty = corrupt(train_clean, rng, nullptr);

  for (EncoderKind kind : encoders) {
    DquagPipelineOptions options;
    options.config.encoder.kind = kind;
    options.config.epochs = epochs;
    options.config.seed = seed;
    // The paper tunes the batch-flag multiplier n "based on observed
    // reconstruction errors after deployment" (§3.2.1; they use 1.2 at ~100k
    // rows). Our datasets are ~6k rows, so 10% batches carry ~4x more
    // binomial noise around the 5% base rate; n = 1.5 absorbs it.
    options.config.batch_flag_multiplier =
        bench::EnvDouble("DQUAG_FLAG_N", 1.5);
    DquagPipeline pipeline(std::move(options));
    Stopwatch fit_time;
    const Status status = pipeline.Fit(train_clean);
    DQUAG_CHECK(status.ok());
    const double clean_flagged = FlaggedFraction(pipeline, test_clean);
    const double dirty_flagged = FlaggedFraction(pipeline, dirty);
    std::printf("%-12s %11.2f%% %11.2f%% %13.2f  [fit %.0fs]\n",
                EncoderKindName(kind).c_str(), clean_flagged * 100.0,
                dirty_flagged * 100.0,
                (dirty_flagged - clean_flagged) * 100.0,
                fit_time.ElapsedSeconds());
  }
}

void RunAll() {
  const bool fast = bench::FastMode();
  const int64_t rows = bench::EnvInt("DQUAG_ROWS", fast ? 1200 : 5000);
  const int64_t epochs = bench::EnvInt("DQUAG_EPOCHS", fast ? 5 : 15);

  RunDataset("Airbnb", datasets::GenerateAirbnbClean,
             datasets::CorruptAirbnb, rows, epochs, /*seed=*/211);
  RunDataset("Bicycle", datasets::GenerateBicycleClean,
             datasets::CorruptBicycle, rows, epochs, /*seed=*/223);
}

}  // namespace
}  // namespace dquag

int main() {
  dquag::SetLogLevel(dquag::LogLevel::kWarning);
  dquag::RunAll();
  return 0;
}
