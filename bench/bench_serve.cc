// Serving-daemon throughput and tail latency over real sockets.
//
// Trains a small pipeline, checkpoints it, starts an in-process ServeDaemon
// on an ephemeral port, deploys the checkpoint under several tenants and
// hammers the daemon with concurrent socket clients issuing kValidate
// requests. Reports requests/s, rows/s, and client-observed latency
// percentiles (p50/p99/p999, measured with the same log-bucketed counter
// the daemon itself uses). A verdict from every client is compared against
// a direct ValidationService call on the same bytes — the bench doubles as
// a parity regression gate and exits non-zero on any mismatch, dropped
// request, or rejected request (the fleet is sized inside the admission
// budget, so a rejection means admission accounting broke).
//
// --json[=path] writes a BENCH_serve.json machine-readable summary
// (default path: BENCH_serve.json). DQUAG_BENCH_FAST=1 shrinks the
// workload. Knobs: DQUAG_SERVE_CLIENTS, DQUAG_SERVE_TENANTS,
// DQUAG_SERVE_REQUESTS (per client), DQUAG_SERVE_BATCH_ROWS.

#include <atomic>
#include <cstdio>
#include <cstring>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "util/atomic_file.h"
#include "core/validation_service.h"
#include "data/generators.h"
#include "serve/client.h"
#include "serve/percentile_counter.h"
#include "serve/server.h"
#include "util/csv.h"
#include "util/logging.h"
#include "util/stopwatch.h"

namespace dquag {
namespace {

int RunAll(const char* json_path) {
  const bool fast = bench::FastMode();
  const int64_t train_rows = bench::EnvInt("DQUAG_TRAIN_ROWS", 256);
  const int64_t epochs = bench::EnvInt("DQUAG_EPOCHS", fast ? 1 : 4);
  const int64_t clients = bench::EnvInt("DQUAG_SERVE_CLIENTS", fast ? 2 : 4);
  const int64_t tenants = bench::EnvInt("DQUAG_SERVE_TENANTS", fast ? 2 : 3);
  const int64_t requests_per_client =
      bench::EnvInt("DQUAG_SERVE_REQUESTS", fast ? 8 : 50);
  const int64_t batch_rows =
      bench::EnvInt("DQUAG_SERVE_BATCH_ROWS", fast ? 64 : 256);

  std::printf("=== serve daemon throughput ===\n");
  std::printf("(%lld clients x %lld requests, %lld tenants, %lld-row "
              "batches, %u hardware threads)\n",
              static_cast<long long>(clients),
              static_cast<long long>(requests_per_client),
              static_cast<long long>(tenants),
              static_cast<long long>(batch_rows),
              std::thread::hardware_concurrency());

  // One fitted checkpoint deployed under every tenant key: registry
  // bookkeeping is per tenant, so this exercises the multi-tenant paths
  // without multiplying training time.
  Rng rng(41);
  Table clean = datasets::GenerateNyTaxi(train_rows, rng, /*dims=*/10);
  DquagPipelineOptions pipeline_options;
  pipeline_options.config.epochs = epochs;
  pipeline_options.config.seed = 41;
  DquagPipeline pipeline(std::move(pipeline_options));
  DQUAG_CHECK(pipeline.Fit(clean).ok());
  const std::string checkpoint = "bench_serve_model.ckpt";
  DQUAG_CHECK(pipeline.Save(checkpoint).ok());

  ServeOptions options;
  options.registry.max_resident = tenants;
  options.registry.max_inflight_per_tenant = clients;
  ServeDaemon daemon(options);
  DQUAG_CHECK(daemon.Start().ok());
  std::vector<std::string> tenant_names;
  for (int64_t t = 0; t < tenants; ++t) {
    tenant_names.push_back("bench/t" + std::to_string(t));
    DQUAG_CHECK(daemon.registry().Deploy(tenant_names.back(), checkpoint).ok());
  }

  // Local baseline for the parity gate.
  auto baseline = ValidationService::FromCheckpoint(checkpoint);
  DQUAG_CHECK(baseline.ok());

  // One pre-serialized batch per client, so the bench times the daemon,
  // not CSV generation.
  std::vector<std::string> batches;
  for (int64_t c = 0; c < clients; ++c) {
    Rng batch_rng(static_cast<uint64_t>(100 + c));
    Table batch =
        datasets::GenerateNyTaxi(batch_rows, batch_rng, /*dims=*/10);
    batches.push_back(WriteCsvString(batch.ToCsv()));
  }

  PercentileCounter latency;
  std::atomic<int64_t> completed{0};
  std::atomic<int64_t> failed{0};
  std::atomic<int64_t> parity_mismatches{0};

  Stopwatch wall;
  std::vector<std::thread> fleet;
  for (int64_t c = 0; c < clients; ++c) {
    fleet.emplace_back([&, c] {
      auto client = ServeClient::Connect("127.0.0.1", daemon.port());
      if (!client.ok()) {
        failed.fetch_add(requests_per_client);
        return;
      }
      const std::string& csv = batches[static_cast<size_t>(c)];
      for (int64_t r = 0; r < requests_per_client; ++r) {
        const std::string& tenant =
            tenant_names[static_cast<size_t>((c + r) % tenants)];
        Stopwatch timer;
        auto verdict = client->Validate(tenant, csv);
        if (!verdict.ok()) {
          failed.fetch_add(1);
          continue;
        }
        latency.Record(static_cast<uint64_t>(timer.ElapsedSeconds() * 1e6));
        completed.fetch_add(1);
        if (r == 0) {
          // Parity gate: first response per client vs a local validation
          // of the identical bytes, bit-exact.
          auto doc = ParseCsv(csv);
          auto table = Table::FromCsv(
              (*baseline)->pipeline().preprocessor().schema(), *doc);
          auto local = (*baseline)->TryValidate(*table);
          if (!local.ok() ||
              verdict->flagged_fraction != local->flagged_fraction ||
              verdict->threshold != local->threshold ||
              verdict->is_dirty != local->is_dirty ||
              verdict->flagged.size() != local->flagged_rows.size()) {
            parity_mismatches.fetch_add(1);
          }
        }
      }
    });
  }
  for (auto& thread : fleet) thread.join();
  const double seconds = wall.ElapsedSeconds();
  daemon.Stop();
  std::remove(checkpoint.c_str());

  const int64_t total = clients * requests_per_client;
  const double requests_per_sec =
      static_cast<double>(completed.load()) / seconds;
  const double rows_per_sec =
      static_cast<double>(completed.load() * batch_rows) / seconds;
  const uint64_t p50 = latency.Percentile(0.50);
  const uint64_t p99 = latency.Percentile(0.99);
  const uint64_t p999 = latency.Percentile(0.999);

  std::printf("%12s  %12s  %10s  %10s  %10s  %10s\n", "requests/s", "rows/s",
              "p50_us", "p99_us", "p999_us", "max_us");
  std::printf("%12.0f  %12.0f  %10llu  %10llu  %10llu  %10llu\n",
              requests_per_sec, rows_per_sec,
              static_cast<unsigned long long>(p50),
              static_cast<unsigned long long>(p99),
              static_cast<unsigned long long>(p999),
              static_cast<unsigned long long>(latency.max()));
  std::printf("completed %lld/%lld requests in %.3f s, %lld failed, "
              "%lld parity mismatches\n",
              static_cast<long long>(completed.load()),
              static_cast<long long>(total), seconds,
              static_cast<long long>(failed.load()),
              static_cast<long long>(parity_mismatches.load()));

  const bool ok = completed.load() == total && failed.load() == 0 &&
                  parity_mismatches.load() == 0;
  if (!ok) {
    std::fprintf(stderr, "FAIL: dropped/failed requests or parity break\n");
  }

  if (json_path != nullptr) {
    std::ostringstream out;
    out << "{\n"
        << "  \"clients\": " << clients << ",\n"
        << "  \"tenants\": " << tenants << ",\n"
        << "  \"requests_per_client\": " << requests_per_client << ",\n"
        << "  \"batch_rows\": " << batch_rows << ",\n"
        << "  \"hardware_concurrency\": "
        << std::thread::hardware_concurrency() << ",\n"
        << "  \"seconds\": " << seconds << ",\n"
        << "  \"requests_per_sec\": " << requests_per_sec << ",\n"
        << "  \"rows_per_sec\": " << rows_per_sec << ",\n"
        << "  \"latency_p50_us\": " << p50 << ",\n"
        << "  \"latency_p99_us\": " << p99 << ",\n"
        << "  \"latency_p999_us\": " << p999 << ",\n"
        << "  \"latency_max_us\": " << latency.max() << ",\n"
        << "  \"completed\": " << completed.load() << ",\n"
        << "  \"failed\": " << failed.load() << ",\n"
        << "  \"parity\": " << (ok ? "true" : "false") << "\n"
        << "}\n";
    const Status json_status = WriteFileAtomic(json_path, out.str());
    if (!json_status.ok()) {
      std::fprintf(stderr, "FAIL: writing %s: %s\n", json_path,
                   json_status.ToString().c_str());
      return 1;
    }
    std::printf("wrote %s\n", json_path);
  }
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace dquag

int main(int argc, char** argv) {
  dquag::SetLogLevel(dquag::LogLevel::kWarning);
  const char* json_path = nullptr;
  std::string json_storage;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      json_path = "BENCH_serve.json";
    } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_storage = argv[i] + 7;
      json_path = json_storage.c_str();
    }
  }
  return dquag::RunAll(json_path);
}
