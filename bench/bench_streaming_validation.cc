// Streaming vs whole-table Phase-2 validation: throughput and memory.
//
// Trains a small pipeline, writes a synthetic NY-Taxi batch to a CSV file,
// then validates it two ways:
//   * whole-table — read + parse the full file into one Table, Validate();
//   * streamed    — CsvChunkReader + ValidateStream, bounded in-flight
//                   chunks across the thread pool, file never materialized.
// Reports wall-clock rows/s for both, verifies the verdicts agree exactly,
// and demonstrates the memory bound: the streamed path's peak resident
// chunk rows is O(max_in_flight * chunk_rows) and INDEPENDENT of the total
// row count, while the whole-table path's working set grows linearly.
// Peak process RSS (VmHWM) is reported for context when /proc is available.
//
// --json[=path] writes a BENCH_streaming.json machine-readable summary
// (default path: BENCH_streaming.json). DQUAG_BENCH_FAST=1 shrinks the
// workload. Exits non-zero if streamed and whole-table verdicts diverge or
// the memory bound is violated — CI runs this as a regression gate.

#include <cstdio>
#include <cstring>
#include <fstream>
#include <set>
#include <vector>
#include <sstream>
#include <string>
#include <thread>

#include "bench_util.h"
#include "util/atomic_file.h"
#include "core/validation_service.h"
#include "data/error_injector.h"
#include "data/generators.h"
#include "data/table_chunk_reader.h"
#include "util/logging.h"
#include "util/stopwatch.h"

namespace dquag {
namespace {

/// Peak resident set size in KiB from /proc/self/status, or 0 off-Linux.
int64_t PeakRssKib() {
  std::ifstream in("/proc/self/status");
  std::string key;
  while (in >> key) {
    if (key == "VmHWM:") {
      int64_t kib = 0;
      in >> kib;
      return kib;
    }
    in.ignore(256, '\n');
  }
  return 0;
}

struct StreamRun {
  double seconds = 0.0;
  int64_t rows = 0;
  int64_t flagged = 0;
  int64_t peak_buffered_rows = 0;
  bool is_dirty = false;
};

int RunAll(const char* json_path) {
  const bool fast = bench::FastMode();
  const int64_t train_rows = bench::EnvInt("DQUAG_TRAIN_ROWS", 512);
  const int64_t epochs = bench::EnvInt("DQUAG_EPOCHS", fast ? 2 : 6);
  const int64_t rows = bench::EnvInt("DQUAG_ROWS", fast ? 4000 : 50000);
  const int64_t chunk_rows = bench::EnvInt("DQUAG_CHUNK_ROWS", 2048);
  const int64_t max_in_flight = bench::EnvInt("DQUAG_MAX_IN_FLIGHT", 4);

  std::printf("=== streaming vs whole-table validation ===\n");
  std::printf("(%lld rows, chunk %lld, max in-flight %lld, %u hardware "
              "threads)\n",
              static_cast<long long>(rows),
              static_cast<long long>(chunk_rows),
              static_cast<long long>(max_in_flight),
              std::thread::hardware_concurrency());

  Rng rng(41);
  Table clean = datasets::GenerateNyTaxi(train_rows, rng, /*dims=*/10);
  DquagPipelineOptions options;
  options.config.epochs = epochs;
  options.config.seed = 41;
  DquagPipeline pipeline(std::move(options));
  DQUAG_CHECK(pipeline.Fit(clean).ok());
  ValidationService service(std::move(pipeline));
  const Schema& schema = service.pipeline().preprocessor().schema();

  // One dirty batch, persisted as the CSV "incoming data" both paths read.
  Table incoming = datasets::GenerateNyTaxi(rows, rng, /*dims=*/10);
  {
    ErrorInjector injector(43);
    incoming =
        injector.InjectNumericAnomalies(incoming, {"fare_amount"}, 0.1)
            .table;
  }
  const std::string path = "bench_streaming_input.csv";
  DQUAG_CHECK(WriteCsvFile(incoming.ToCsv(), path).ok());
  incoming = Table();  // the file is the source of truth from here on

  // Whole-table path: parse everything, validate once.
  Stopwatch whole_timer;
  auto doc = ReadCsvFile(path);
  DQUAG_CHECK(doc.ok());
  auto whole_table = Table::FromCsv(schema, *doc);
  DQUAG_CHECK(whole_table.ok());
  const BatchVerdict whole_verdict = service.Validate(*whole_table);
  const double whole_seconds = whole_timer.ElapsedSeconds();

  // Streamed path at two stream lengths: full file, and a half-length
  // prefix re-written to its own file. Equal peaks => O(chunk) memory,
  // independent of stream length.
  std::vector<size_t> stream_flagged_rows;
  auto run_stream = [&](const std::string& file, ValidationMode mode,
                        std::vector<size_t>* flagged_out) {
    StreamRun run;
    Stopwatch timer;
    CsvChunkReaderOptions reader_options;
    reader_options.chunk_rows = chunk_rows;
    auto reader = CsvChunkReader::Open(file, schema, reader_options);
    DQUAG_CHECK(reader.ok());
    StreamingValidatorOptions stream_options;
    stream_options.max_in_flight = max_in_flight;
    stream_options.mode = mode;
    auto verdict = service.ValidateStream(**reader, nullptr, stream_options);
    DQUAG_CHECK(verdict.ok());
    run.seconds = timer.ElapsedSeconds();
    run.rows = verdict->total_rows;
    run.flagged = static_cast<int64_t>(verdict->flagged_rows.size());
    run.peak_buffered_rows = verdict->peak_buffered_rows;
    run.is_dirty = verdict->is_dirty;
    if (flagged_out != nullptr) *flagged_out = verdict->flagged_rows;
    return run;
  };

  const std::string half_path = "bench_streaming_input_half.csv";
  DQUAG_CHECK(
      WriteCsvFile(whole_table->SliceRows(0, rows / 2).ToCsv(), half_path)
          .ok());

  const StreamRun half = run_stream(half_path, ValidationMode{}, nullptr);
  const StreamRun full =
      run_stream(path, ValidationMode{}, &stream_flagged_rows);
  // Quantized stream: same file through the int8 forward path. The verdict
  // contract (ValidationMode) allows at most 0.5% of rows to flip versus
  // the float stream.
  std::vector<size_t> quant_flagged_rows;
  const StreamRun quant =
      run_stream(path, ValidationMode{/*quantized=*/true,
                                      /*recheck_margin=*/0.25},
                 &quant_flagged_rows);

  const double whole_rows_per_sec =
      static_cast<double>(rows) / whole_seconds;
  const double stream_rows_per_sec =
      static_cast<double>(full.rows) / full.seconds;
  const double quant_rows_per_sec =
      static_cast<double>(quant.rows) / quant.seconds;
  // Symmetric difference of the flagged-row id sets = verdict flips.
  int64_t quant_flips = 0;
  {
    std::set<size_t> a(stream_flagged_rows.begin(),
                       stream_flagged_rows.end());
    std::set<size_t> b(quant_flagged_rows.begin(), quant_flagged_rows.end());
    for (size_t id : a) quant_flips += b.count(id) == 0 ? 1 : 0;
    for (size_t id : b) quant_flips += a.count(id) == 0 ? 1 : 0;
  }
  const int64_t bound = max_in_flight * chunk_rows;

  std::printf("%16s  %10s  %12s  %18s\n", "path", "seconds", "rows/s",
              "peak chunk rows");
  std::printf("%16s  %10.3f  %12.0f  %18s\n", "whole-table", whole_seconds,
              whole_rows_per_sec, "(all rows)");
  std::printf("%16s  %10.3f  %12.0f  %18lld\n", "streamed", full.seconds,
              stream_rows_per_sec,
              static_cast<long long>(full.peak_buffered_rows));
  std::printf("%16s  %10.3f  %12.0f  %18lld\n", "streamed-int8",
              quant.seconds, quant_rows_per_sec,
              static_cast<long long>(quant.peak_buffered_rows));
  std::printf("half-length stream peak: %lld rows (full: %lld, bound: %lld)"
              " — O(chunk), row-count independent\n",
              static_cast<long long>(half.peak_buffered_rows),
              static_cast<long long>(full.peak_buffered_rows),
              static_cast<long long>(bound));
  std::printf("flagged: %lld/%lld rows; %s; peak RSS %lld KiB\n",
              static_cast<long long>(full.flagged),
              static_cast<long long>(full.rows),
              full.is_dirty ? "DIRTY" : "clean",
              static_cast<long long>(PeakRssKib()));
  std::printf("int8 stream: %lld flagged, %lld verdict flips vs float "
              "(budget %lld)\n",
              static_cast<long long>(quant.flagged),
              static_cast<long long>(quant_flips),
              static_cast<long long>(rows / 200));

  bool failed = false;
  if (full.rows != rows ||
      full.flagged != static_cast<int64_t>(whole_verdict.flagged_rows.size()) ||
      full.is_dirty != whole_verdict.is_dirty) {
    std::fprintf(stderr,
                 "FAIL: streamed verdict diverged from whole-table "
                 "(rows %lld vs %lld, flagged %lld vs %zu)\n",
                 static_cast<long long>(full.rows),
                 static_cast<long long>(rows),
                 static_cast<long long>(full.flagged),
                 whole_verdict.flagged_rows.size());
    failed = true;
  }
  if (full.peak_buffered_rows > bound || half.peak_buffered_rows > bound) {
    std::fprintf(stderr,
                 "FAIL: peak buffered rows exceeded the "
                 "max_in_flight * chunk_rows bound\n");
    failed = true;
  }
  if (quant_flips > rows / 200) {
    std::fprintf(stderr,
                 "FAIL: quantized stream flipped %lld row verdicts "
                 "(> 0.5%% of %lld rows)\n",
                 static_cast<long long>(quant_flips),
                 static_cast<long long>(rows));
    failed = true;
  }

  if (json_path != nullptr) {
    std::ostringstream out;
    out << "{\n"
        << "  \"rows\": " << rows << ",\n"
        << "  \"chunk_rows\": " << chunk_rows << ",\n"
        << "  \"max_in_flight\": " << max_in_flight << ",\n"
        << "  \"hardware_concurrency\": "
        << std::thread::hardware_concurrency() << ",\n"
        << "  \"whole_seconds\": " << whole_seconds << ",\n"
        << "  \"stream_seconds\": " << full.seconds << ",\n"
        << "  \"whole_rows_per_sec\": " << whole_rows_per_sec << ",\n"
        << "  \"stream_rows_per_sec\": " << stream_rows_per_sec << ",\n"
        << "  \"stream_rows_per_sec_quantized\": " << quant_rows_per_sec
        << ",\n"
        << "  \"quantized_stream_flips\": " << quant_flips << ",\n"
        << "  \"peak_buffered_rows_full\": " << full.peak_buffered_rows
        << ",\n"
        << "  \"peak_buffered_rows_half\": " << half.peak_buffered_rows
        << ",\n"
        << "  \"peak_buffered_rows_bound\": " << bound << ",\n"
        << "  \"flagged_rows\": " << full.flagged << ",\n"
        << "  \"is_dirty\": " << (full.is_dirty ? "true" : "false") << ",\n"
        << "  \"peak_rss_kib\": " << PeakRssKib() << ",\n"
        << "  \"verdict_parity\": " << (failed ? "false" : "true") << "\n"
        << "}\n";
    const Status json_status = WriteFileAtomic(json_path, out.str());
    if (!json_status.ok()) {
      std::fprintf(stderr, "FAIL: writing %s: %s\n", json_path,
                   json_status.ToString().c_str());
      failed = true;
    }
    std::printf("wrote %s\n", json_path);
  }

  std::remove(path.c_str());
  std::remove(half_path.c_str());
  return failed ? 1 : 0;
}

}  // namespace
}  // namespace dquag

int main(int argc, char** argv) {
  dquag::SetLogLevel(dquag::LogLevel::kWarning);
  const char* json_path = nullptr;
  std::string json_storage;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      json_path = "BENCH_streaming.json";
    } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_storage = argv[i] + 7;
      json_path = json_storage.c_str();
    }
  }
  return dquag::RunAll(json_path);
}
