// Shared helpers for the benchmark harnesses.

#ifndef DQUAG_BENCH_BENCH_UTIL_H_
#define DQUAG_BENCH_BENCH_UTIL_H_

#include <cstdint>
#include <cstdlib>
#include <string>

namespace dquag {
namespace bench {

/// Integer environment override with default (e.g. DQUAG_EPOCHS=30).
inline int64_t EnvInt(const char* name, int64_t default_value) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return default_value;
  return std::strtoll(value, nullptr, 10);
}

inline double EnvDouble(const char* name, double default_value) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return default_value;
  return std::strtod(value, nullptr);
}

/// True when DQUAG_BENCH_FAST=1: benches shrink workloads for smoke runs.
inline bool FastMode() { return EnvInt("DQUAG_BENCH_FAST", 0) != 0; }

}  // namespace bench
}  // namespace dquag

#endif  // DQUAG_BENCH_BENCH_UTIL_H_
