// Reproduces §4.6: data repair evaluation on Airbnb and Bicycle.
//
// Paper numbers: Airbnb dirty error rate 10.52% -> 4.97% after repair
// (clean data sits at 4.95% because the threshold is the 95th percentile);
// Bicycle 21.11% -> 2.75%; the repaired datasets are classified clean.
// "Error rate" is the fraction of instances whose reconstruction error
// exceeds e_threshold.

#include <cstdio>
#include <functional>
#include <vector>

#include "bench_util.h"
#include "data/generators.h"
#include "eval/experiment.h"
#include "util/logging.h"

namespace dquag {
namespace {

void RunDataset(
    const std::string& name,
    const std::function<Table(int64_t, Rng&)>& generate_clean,
    const std::function<Table(const Table&, Rng&, std::vector<bool>*)>&
        corrupt,
    int64_t rows, int64_t epochs, uint64_t seed) {
  Rng rng(seed);
  const Table train_clean = generate_clean(rows, rng);
  const Table& test_clean = train_clean;
  std::vector<bool> corrupted;
  const Table dirty = corrupt(train_clean, rng, &corrupted);
  int64_t truly_dirty = 0;
  for (bool flag : corrupted) truly_dirty += flag ? 1 : 0;

  DquagPipelineOptions options;
  options.config.epochs = epochs;
  options.config.seed = seed;
  // The paper tunes the batch-flag multiplier n "based on observed
  // reconstruction errors after deployment" (§3.2.1; they use 1.2 at ~100k
  // rows). Our datasets are ~6k rows, so 10% batches carry ~4x more
  // binomial noise around the 5% base rate; n = 1.5 absorbs it.
  options.config.batch_flag_multiplier = bench::EnvDouble("DQUAG_FLAG_N", 1.5);
  DquagPipeline pipeline(std::move(options));
  DQUAG_CHECK(pipeline.Fit(train_clean).ok());

  const BatchVerdict clean_verdict = pipeline.Validate(test_clean);
  const BatchVerdict dirty_verdict = pipeline.Validate(dirty);
  RepairResult repair = pipeline.Repair(dirty, dirty_verdict);
  const BatchVerdict repaired_verdict = pipeline.Validate(repair.repaired);

  std::printf("\n--- %s ---\n", name.c_str());
  std::printf("injected corruption rate:        %6.2f%%\n",
              100.0 * static_cast<double>(truly_dirty) /
                  static_cast<double>(rows));
  std::printf("clean data error rate:           %6.2f%%\n",
              clean_verdict.flagged_fraction * 100.0);
  std::printf("dirty data error rate:           %6.2f%%  -> %s\n",
              dirty_verdict.flagged_fraction * 100.0,
              dirty_verdict.is_dirty ? "DIRTY" : "clean");
  std::printf("after repair error rate:         %6.2f%%  -> %s\n",
              repaired_verdict.flagged_fraction * 100.0,
              repaired_verdict.is_dirty ? "DIRTY" : "clean");
  std::printf("cells repaired: %lld in %lld instances\n",
              static_cast<long long>(repair.cells_repaired),
              static_cast<long long>(repair.instances_repaired));
}

void RunAll() {
  const bool fast = bench::FastMode();
  const int64_t rows = bench::EnvInt("DQUAG_ROWS", fast ? 1500 : 6000);
  const int64_t epochs = bench::EnvInt("DQUAG_EPOCHS", fast ? 6 : 20);

  std::printf("=== Repair evaluation (paper §4.6) ===\n");
  RunDataset("Airbnb", datasets::GenerateAirbnbClean,
             datasets::CorruptAirbnb, rows, epochs, /*seed=*/401);
  RunDataset("Bicycle", datasets::GenerateBicycleClean,
             datasets::CorruptBicycle, rows, epochs, /*seed=*/409);
}

}  // namespace
}  // namespace dquag

int main() {
  dquag::SetLogLevel(dquag::LogLevel::kWarning);
  dquag::RunAll();
  return 0;
}
