// Reproduces Table 1: accuracy and recall of Deequ auto/expert, TFDV
// auto/expert, ADQV, Gate, and DQuaG on the Hotel Booking and Credit Card
// datasets under synthetic ordinary errors (N = numeric anomalies,
// S = string typos, M = missing values; 20% of values in three attributes)
// and hidden logical/temporal conflicts (§4.1.2, §4.2).
//
// Protocol (§4.2): every method is fitted on the clean dataset; 50 clean and
// 50 dirty batches (10% samples) are classified per error type.
//
// Environment knobs: DQUAG_EPOCHS, DQUAG_ROWS, DQUAG_BATCHES,
// DQUAG_BENCH_FAST=1 (small smoke run).

#include <cstdio>
#include <functional>
#include <memory>
#include <vector>

#include "baselines/adqv.h"
#include "baselines/deequ.h"
#include "baselines/gate.h"
#include "baselines/tfdv.h"
#include "bench_util.h"
#include "data/error_injector.h"
#include "data/generators.h"
#include "eval/experiment.h"
#include "util/logging.h"
#include "util/stopwatch.h"

namespace dquag {
namespace {

struct ErrorScenario {
  std::string label;
  std::function<Table(const Table&, ErrorInjector&)> corrupt;
};

struct Fleet {
  DeequValidator deequ_auto{BaselineMode::kAuto};
  DeequValidator deequ_expert{BaselineMode::kExpert};
  TfdvValidator tfdv_auto{BaselineMode::kAuto};
  TfdvValidator tfdv_expert{BaselineMode::kExpert};
  AdqvValidator adqv;
  GateValidator gate;
  DquagBatchValidator dquag;

  explicit Fleet(DquagPipelineOptions options)
      : dquag(std::move(options)) {}

  std::vector<BatchValidator*> All() {
    return {&deequ_auto, &deequ_expert, &tfdv_auto, &tfdv_expert, &adqv,
            &gate, &dquag};
  }
};

void RunDataset(const std::string& dataset_name,
                const std::function<Table(int64_t, Rng&)>& generate,
                const std::vector<ErrorScenario>& scenarios, int64_t rows,
                int64_t epochs, int num_batches, uint64_t seed) {
  std::printf("\n=== Table 1: %s ===\n", dataset_name.c_str());
  Rng rng(seed);
  // Paper protocol (§4.2): batches are 10% samples of the clean dataset
  // itself, and the dirty dataset is that same dataset with injected
  // errors.
  const Table train_clean = generate(rows, rng);
  const Table& test_clean = train_clean;

  DquagPipelineOptions options;
  options.config.epochs = epochs;
  options.config.seed = seed;
  // The paper tunes the batch-flag multiplier n "based on observed
  // reconstruction errors after deployment" (§3.2.1; they use 1.2 at ~100k
  // rows). Our datasets are ~6k rows, so 10% batches carry ~4x more
  // binomial noise around the 5% base rate; n = 1.5 absorbs it.
  options.config.batch_flag_multiplier = bench::EnvDouble("DQUAG_FLAG_N", 1.5);
  Fleet fleet(std::move(options));

  Stopwatch fit_time;
  for (BatchValidator* validator : fleet.All()) validator->Fit(train_clean);
  std::printf("[fit all methods on %lld clean rows: %.1fs]\n",
              static_cast<long long>(rows), fit_time.ElapsedSeconds());

  for (const ErrorScenario& scenario : scenarios) {
    ErrorInjector injector(seed ^ std::hash<std::string>{}(scenario.label));
    const Table dirty = scenario.corrupt(test_clean, injector);
    Rng batch_rng(seed + 17);
    const BatchSets sets =
        MakeBatchSets(test_clean, dirty, num_batches, 0.1, batch_rng);
    std::vector<MethodResult> results;
    for (BatchValidator* validator : fleet.All()) {
      results.push_back(EvaluateValidator(*validator, sets));
    }
    PrintResultTable(dataset_name + " / " + scenario.label, results);
  }
}

void RunAll() {
  const bool fast = bench::FastMode();
  const int64_t rows = bench::EnvInt("DQUAG_ROWS", fast ? 1500 : 6000);
  const int64_t epochs = bench::EnvInt("DQUAG_EPOCHS", fast ? 6 : 20);
  const int num_batches =
      static_cast<int>(bench::EnvInt("DQUAG_BATCHES", fast ? 10 : 50));

  // --- Hotel Booking: ordinary errors + the Group/adults/babies conflict.
  std::vector<ErrorScenario> hotel_scenarios = {
      {"N (numeric anomalies)",
       [](const Table& t, ErrorInjector& inj) {
         return inj
             .InjectNumericAnomalies(
                 t, {"lead_time", "adr", "stays_in_week_nights"}, 0.2)
             .table;
       }},
      {"S (string typos)",
       [](const Table& t, ErrorInjector& inj) {
         return inj.InjectTypos(t, {"hotel", "meal", "arrival_month"}, 0.2)
             .table;
       }},
      {"M (missing values)",
       [](const Table& t, ErrorInjector& inj) {
         return inj.InjectMissing(t, {"lead_time", "adr", "meal"}, 0.2)
             .table;
       }},
      {"Conflicts (Group/adults/babies)",
       [](const Table& t, ErrorInjector& inj) {
         return inj.InjectHotelGroupConflict(t, 0.2).table;
       }},
  };
  RunDataset("Hotel Booking", datasets::GenerateHotelBooking,
             hotel_scenarios, rows, epochs, num_batches, /*seed=*/11);

  // --- Credit Card: ordinary errors + the two hidden conflicts.
  std::vector<ErrorScenario> credit_scenarios = {
      {"N (numeric anomalies)",
       [](const Table& t, ErrorInjector& inj) {
         return inj
             .InjectNumericAnomalies(
                 t, {"AMT_INCOME_TOTAL", "DAYS_BIRTH", "CNT_CHILDREN"}, 0.2)
             .table;
       }},
      {"S (string typos)",
       [](const Table& t, ErrorInjector& inj) {
         return inj
             .InjectTypos(t,
                          {"NAME_EDUCATION_TYPE", "OCCUPATION_TYPE",
                           "NAME_FAMILY_STATUS"},
                          0.2)
             .table;
       }},
      {"M (missing values)",
       [](const Table& t, ErrorInjector& inj) {
         return inj
             .InjectMissing(
                 t, {"AMT_INCOME_TOTAL", "OCCUPATION_TYPE", "DAYS_EMPLOYED"},
                 0.2)
             .table;
       }},
      {"Conflicts-1 (employment before birth)",
       [](const Table& t, ErrorInjector& inj) {
         return inj.InjectCreditEmploymentConflict(t, 0.2).table;
       }},
      {"Conflicts-2 (education/occupation vs income)",
       [](const Table& t, ErrorInjector& inj) {
         return inj.InjectCreditIncomeConflict(t, 0.2).table;
       }},
  };
  RunDataset("Credit Card", datasets::GenerateCreditCard, credit_scenarios,
             rows, epochs, num_batches, /*seed=*/13);
}

}  // namespace
}  // namespace dquag

int main() {
  dquag::SetLogLevel(dquag::LogLevel::kWarning);
  dquag::RunAll();
  return 0;
}
