// dquag — command-line interface to the DQuaG pipeline.
//
// Subcommands:
//   dquag train     --clean data.csv --schema schema.json --out model.ckpt
//                   [--epochs N] [--encoder gat+gin] [--relationships r.json]
//   dquag convert   <data.csv> <data.dqc> --schema schema.json
//                   [--block-rows N]      (CSV -> columnar .dqc, out-of-core)
//   dquag validate  --model model.ckpt --data new.csv [--verbose]
//                   [--micro-batch M] [--stream] [--chunk-rows N]
//                   [--format csv|columnar]
//                   [--quantized [--quantized-margin F]]  (int8 inference)
//   dquag repair    --model model.ckpt --data new.csv --out repaired.csv
//   dquag explain   --model model.ckpt --data new.csv --row K
//   dquag serve-sim --model model.ckpt --data new.csv [--threads T]
//                   [--rounds R] [--micro-batch M] [--stream]
//                   [--chunk-rows N]                 (concurrent serving sim)
//   dquag serve     --port P [--host H] [--capacity N] [--max-inflight K]
//                   [--max-connections C] [--micro-batch M]
//                   [--io-timeout-ms MS]  (disconnect stalled peers; 0=off)
//                   [--deploy tenant=model.ckpt[,t2=m2.ckpt...]]
//                     (append @quantized to a checkpoint for int8 serving)
//                   [--auto-retrain [--retrain-epochs N]
//                    [--retrain-min-rows R] [--retrain-buffer-rows B]
//                    [--retrain-triggers K] [--retrain-cooldown-rows C]
//                    [--retrain-seed S]]   (drift-triggered fine-tune +
//                                           zero-drop hot swap)
//                                                    (socket-backed daemon)
//   dquag deploy    --port P --tenant T --checkpoint model.ckpt [--host H]
//                   [--quantized]
//   dquag stats     --port P [--tenant T] [--host H]
//   dquag shutdown  --port P [--host H]
//
// Client commands (deploy/stats/shutdown) also take:
//   --timeout-ms MS          end-to-end deadline per call (0 = none); the
//                            remaining budget rides in the wire header so
//                            the daemon drops work the client abandoned
//   --retries N              retry idempotent calls (stats) with
//                            exponential backoff; deploy/shutdown never
//                            retry
//   --connect-timeout-ms MS  bound on TCP connect (default 5000)
//   dquag schema-template --data data.csv   (guess a schema from a CSV)
//
// validate and serve-sim run through the ValidationService: micro-batched
// tape-free inference fanned across the process thread pool. With --stream
// the input is never materialized: chunks of --chunk-rows rows are read,
// validated and retired with bounded memory, and the verdict is
// bit-identical to the whole-table run. Data files may be CSV or the
// columnar .dqc format produced by `dquag convert` — `--format` forces a
// reader, otherwise the .dqc suffix selects columnar.
//
// serve starts the real daemon (serve/server.h): a multi-tenant model
// registry (LRU-bounded residency, lazy checkpoint loads, atomic hot-swap
// via repeated `dquag deploy`) behind the length-prefixed wire protocol.
// It runs until SIGINT or a client's shutdown request, then prints one
// stats line per tenant — the same schema serve-sim reports.
//
// Exit code: 0 on success (validate: also when the batch is clean),
// 2 when validate classifies the batch dirty, 1 on errors.

#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "core/explainer.h"
#include "core/pipeline.h"
#include "core/validation_service.h"
#include "data/columnar_reader.h"
#include "data/columnar_writer.h"
#include "data/schema_json.h"
#include "data/table_chunk_reader.h"
#include "graph/relationship_json.h"
#include "serve/client.h"
#include "serve/server.h"
#include "serve/serving_stats.h"
#include "util/atomic_file.h"
#include "util/logging.h"
#include "util/stopwatch.h"

namespace dquag {
namespace {

/// Minimal --flag value parser; flags without '--' are positional.
class Args {
 public:
  Args(int argc, char** argv) {
    for (int i = 2; i < argc; ++i) {
      std::string token = argv[i];
      if (token.rfind("--", 0) == 0) {
        const std::string key = token.substr(2);
        if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
          values_[key] = argv[++i];
        } else {
          values_[key] = "1";  // boolean flag
        }
      } else {
        positional_.push_back(std::move(token));
      }
    }
  }

  const std::vector<std::string>& positional() const { return positional_; }

  bool Has(const std::string& key) const { return values_.count(key) > 0; }
  std::string Get(const std::string& key,
                  const std::string& fallback = "") const {
    auto it = values_.find(key);
    return it == values_.end() ? fallback : it->second;
  }
  int64_t GetInt(const std::string& key, int64_t fallback) const {
    auto it = values_.find(key);
    return it == values_.end() ? fallback
                               : std::strtoll(it->second.c_str(), nullptr, 10);
  }
  double GetDouble(const std::string& key, double fallback) const {
    auto it = values_.find(key);
    return it == values_.end() ? fallback
                               : std::strtod(it->second.c_str(), nullptr);
  }

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

/// Data-file format selection: an explicit --format wins, otherwise the
/// .dqc suffix selects columnar and anything else is CSV.
StatusOr<bool> UseColumnar(const Args& args, const std::string& path) {
  if (args.Has("format")) {
    const std::string format = args.Get("format");
    if (format == "columnar") return true;
    if (format == "csv") return false;
    return Status::InvalidArgument("--format must be csv or columnar, got '" +
                                   format + "'");
  }
  return path.size() >= 4 && path.compare(path.size() - 4, 4, ".dqc") == 0;
}

/// Materializes a data file of either format, checking it against the
/// expected schema.
StatusOr<Table> LoadDataTable(const Args& args, const std::string& path,
                              const Schema& schema) {
  DQUAG_ASSIGN_OR_RETURN(const bool columnar, UseColumnar(args, path));
  if (columnar) {
    DQUAG_ASSIGN_OR_RETURN(Table table, ReadColumnarTable(path));
    if (!(table.schema() == schema)) {
      return Status::InvalidArgument(
          "columnar file schema does not match the expected schema");
    }
    return table;
  }
  DQUAG_ASSIGN_OR_RETURN(CsvDocument csv, ReadCsvFile(path));
  return Table::FromCsv(schema, csv);
}

/// Opens a streaming chunk reader of either format.
StatusOr<std::unique_ptr<TableChunkReader>> OpenDataChunkReader(
    const Args& args, const std::string& path, const Schema& schema,
    int64_t chunk_rows) {
  DQUAG_ASSIGN_OR_RETURN(const bool columnar, UseColumnar(args, path));
  if (columnar) {
    ColumnarReaderOptions options;
    options.chunk_rows = chunk_rows;
    DQUAG_ASSIGN_OR_RETURN(std::unique_ptr<ColumnarReader> reader,
                           ColumnarReader::Open(path, options));
    if (!(reader->schema() == schema)) {
      return Status::InvalidArgument(
          "columnar file schema does not match the expected schema");
    }
    return std::unique_ptr<TableChunkReader>(std::move(reader));
  }
  CsvChunkReaderOptions options;
  options.chunk_rows = chunk_rows;
  DQUAG_ASSIGN_OR_RETURN(std::unique_ptr<CsvChunkReader> reader,
                         CsvChunkReader::Open(path, schema, options));
  return std::unique_ptr<TableChunkReader>(std::move(reader));
}

StatusOr<Table> LoadTable(const Args& args, const std::string& schema_path,
                          const std::string& data_path) {
  auto schema = LoadSchema(schema_path);
  if (!schema.ok()) return schema.status();
  return LoadDataTable(args, data_path, *schema);
}

int CmdConvert(const Args& args) {
  std::string csv_path = args.Get("data");
  std::string dqc_path = args.Get("out");
  // Positional form: dquag convert data.csv data.dqc --schema schema.json
  if (csv_path.empty() && args.positional().size() >= 1) {
    csv_path = args.positional()[0];
  }
  if (dqc_path.empty() && args.positional().size() >= 2) {
    dqc_path = args.positional()[1];
  }
  const std::string schema_path = args.Get("schema");
  if (csv_path.empty() || dqc_path.empty() || schema_path.empty()) {
    std::fprintf(stderr,
                 "usage: dquag convert <data.csv> <data.dqc> "
                 "--schema schema.json [--block-rows N]\n");
    return 1;
  }
  auto schema = LoadSchema(schema_path);
  if (!schema.ok()) return Fail(schema.status());
  ColumnarWriterOptions options;
  options.block_rows = args.GetInt("block-rows", 4096);
  if (options.block_rows <= 0) {
    return Fail(Status::InvalidArgument("--block-rows must be > 0"));
  }
  auto rows = ConvertCsvToColumnar(csv_path, *schema, dqc_path, options);
  if (!rows.ok()) return Fail(rows.status());
  std::printf("converted %lld rows: %s -> %s (block %lld)\n",
              static_cast<long long>(*rows), csv_path.c_str(),
              dqc_path.c_str(), static_cast<long long>(options.block_rows));
  return 0;
}

int CmdTrain(const Args& args) {
  const std::string clean_path = args.Get("clean");
  const std::string schema_path = args.Get("schema");
  const std::string out_path = args.Get("out", "model.ckpt");
  if (clean_path.empty() || schema_path.empty()) {
    std::fprintf(stderr,
                 "usage: dquag train --clean data.csv --schema schema.json "
                 "--out model.ckpt [--epochs N] [--encoder gat+gin]\n");
    return 1;
  }
  auto table = LoadTable(args, schema_path, clean_path);
  if (!table.ok()) return Fail(table.status());

  DquagPipelineOptions options;
  options.config.epochs = args.GetInt("epochs", 25);
  options.config.seed = static_cast<uint64_t>(args.GetInt("seed", 42));
  if (args.Has("encoder")) {
    auto kind = ParseEncoderKind(args.Get("encoder"));
    if (!kind.ok()) return Fail(kind.status());
    options.config.encoder.kind = *kind;
  }
  if (args.Has("relationships")) {
    auto rels = LoadRelationships(args.Get("relationships"));
    if (!rels.ok()) return Fail(rels.status());
    options.relationships = *rels;
  }

  DquagPipeline pipeline(std::move(options));
  Status status = pipeline.Fit(*table);
  if (!status.ok()) return Fail(status);
  std::printf("trained on %lld rows; threshold %.6f; %zu relationships\n",
              static_cast<long long>(table->num_rows()),
              pipeline.threshold(), pipeline.relationships().size());
  status = pipeline.Save(out_path);
  if (!status.ok()) return Fail(status);
  std::printf("checkpoint: %s\n", out_path.c_str());
  return 0;
}

StatusOr<DquagPipeline> LoadModelAndData(const Args& args, Table* table) {
  const std::string model_path = args.Get("model");
  const std::string data_path = args.Get("data");
  if (model_path.empty() || data_path.empty()) {
    return Status::InvalidArgument("--model and --data are required");
  }
  auto pipeline = DquagPipeline::Load(model_path);
  if (!pipeline.ok()) return pipeline.status();
  auto loaded =
      LoadDataTable(args, data_path, pipeline->preprocessor().schema());
  if (!loaded.ok()) return loaded.status();
  *table = std::move(*loaded);
  return pipeline;
}

StatusOr<std::unique_ptr<ValidationService>> LoadService(const Args& args) {
  const std::string model_path = args.Get("model");
  const std::string data_path = args.Get("data");
  if (model_path.empty() || data_path.empty()) {
    return Status::InvalidArgument("--model and --data are required");
  }
  ValidationServiceOptions options;
  options.micro_batch_rows = args.GetInt("micro-batch", 512);
  options.quantized = args.Has("quantized");
  options.quantized_margin = args.GetDouble("quantized-margin", 0.25);
  if (options.quantized_margin < 0.0) {
    return Status::InvalidArgument("--quantized-margin must be >= 0");
  }
  return ValidationService::FromCheckpoint(model_path, options);
}

StatusOr<std::unique_ptr<ValidationService>> LoadServiceAndData(
    const Args& args, Table* table) {
  auto service = LoadService(args);
  if (!service.ok()) return service.status();
  auto loaded = LoadDataTable(args, args.Get("data"),
                              (*service)->pipeline().preprocessor().schema());
  if (!loaded.ok()) return loaded.status();
  *table = std::move(*loaded);
  return service;
}

void PrintFlaggedRow(const Schema& schema, size_t row,
                     const InstanceVerdict& inst) {
  std::printf("row %zu: error %.5f; suspect:", row, inst.error);
  for (int64_t c : inst.suspect_features) {
    std::printf(" %s", schema.column(c).name.c_str());
  }
  std::printf("\n");
}

/// validate --stream: the CSV is consumed chunk by chunk and never
/// materialized; output and exit code match the whole-table path exactly.
int CmdValidateStream(const Args& args) {
  auto service = LoadService(args);
  if (!service.ok()) return Fail(service.status());
  const int64_t chunk_rows = args.GetInt("chunk-rows", 4096);
  if (chunk_rows <= 0) {
    return Fail(Status::InvalidArgument("--chunk-rows must be > 0"));
  }
  const Schema& schema = (*service)->pipeline().preprocessor().schema();
  auto reader =
      OpenDataChunkReader(args, args.Get("data"), schema, chunk_rows);
  if (!reader.ok()) return Fail(reader.status());
  auto verdict = (*service)->ValidateStream(**reader);
  if (!verdict.ok()) return Fail(verdict.status());
  std::printf("%s: %.2f%% of %lld instances flagged (cutoff %.2f%%)\n",
              verdict->is_dirty ? "DIRTY" : "clean",
              verdict->flagged_fraction * 100.0,
              static_cast<long long>(verdict->total_rows),
              (*service)->pipeline().validator().batch_cutoff() * 100.0);
  if (args.Has("verbose")) {
    for (size_t i = 0; i < verdict->flagged_rows.size(); ++i) {
      PrintFlaggedRow(schema, verdict->flagged_rows[i],
                      verdict->flagged_instances[i]);
    }
  }
  return verdict->is_dirty ? 2 : 0;
}

int CmdValidate(const Args& args) {
  if (args.Has("stream")) return CmdValidateStream(args);
  Table table;
  auto service = LoadServiceAndData(args, &table);
  if (!service.ok()) return Fail(service.status());
  BatchVerdict verdict = (*service)->Validate(table);
  std::printf("%s: %.2f%% of %lld instances flagged (cutoff %.2f%%)\n",
              verdict.is_dirty ? "DIRTY" : "clean",
              verdict.flagged_fraction * 100.0,
              static_cast<long long>(table.num_rows()),
              (*service)->pipeline().validator().batch_cutoff() * 100.0);
  if (args.Has("verbose")) {
    const Schema& schema = table.schema();
    for (size_t row : verdict.flagged_rows) {
      PrintFlaggedRow(schema, row, verdict.instances[row]);
    }
  }
  return verdict.is_dirty ? 2 : 0;
}

int CmdServeSim(const Args& args) {
  Table table;
  auto service_or = LoadServiceAndData(args, &table);
  if (!service_or.ok()) return Fail(service_or.status());
  ValidationService& service = **service_or;
  const int64_t threads = args.GetInt("threads", 4);
  const int64_t rounds = args.GetInt("rounds", 8);
  if (threads <= 0 || rounds <= 0) {
    return Fail(Status::InvalidArgument("--threads and --rounds must be > 0"));
  }

  const bool stream = args.Has("stream");
  const int64_t chunk_rows = args.GetInt("chunk-rows", 4096);
  if (stream && chunk_rows <= 0) {
    return Fail(Status::InvalidArgument("--chunk-rows must be > 0"));
  }
  const std::string data_path = args.Get("data");
  bool columnar_stream = false;
  if (stream) {
    auto columnar = UseColumnar(args, data_path);
    if (!columnar.ok()) return Fail(columnar.status());
    columnar_stream = *columnar;
    if (columnar_stream) {
      // Fail cleanly up front; the per-round opens inside the client
      // threads then only re-read an already-validated file.
      auto probe = ColumnarReader::Open(data_path);
      if (!probe.ok()) return Fail(probe.status());
    }
  }
  if (stream) {
    std::printf("serving %lld rows to %lld concurrent STREAMING clients, "
                "%lld rounds each (chunk %lld)\n",
                static_cast<long long>(table.num_rows()),
                static_cast<long long>(threads),
                static_cast<long long>(rounds),
                static_cast<long long>(chunk_rows));
  } else {
    std::printf("serving %lld rows to %lld concurrent clients, %lld rounds "
                "each (micro-batch %lld)\n",
                static_cast<long long>(table.num_rows()),
                static_cast<long long>(threads),
                static_cast<long long>(rounds),
                static_cast<long long>(service.options().micro_batch_rows));
  }
  // Simulated clients report through the SAME lock-free counters the
  // daemon keeps per tenant, so serve-sim and `dquag stats` emit one
  // metric schema (serve/serving_stats.h).
  TenantCounters counters;
  Stopwatch timer;
  std::vector<std::thread> clients;
  clients.reserve(static_cast<size_t>(threads));
  for (int64_t t = 0; t < threads; ++t) {
    clients.emplace_back([&] {
      for (int64_t r = 0; r < rounds; ++r) {
        Stopwatch request_timer;
        if (stream) {
          // Each round streams the batch through its own cursor; readers
          // are cheap, the chunk buffers live inside ObserveStream. With a
          // columnar file every round exercises the real mmap read path.
          std::unique_ptr<ColumnarReader> file_reader;
          std::unique_ptr<TableViewChunkReader> view_reader;
          TableChunkReader* reader = nullptr;
          if (columnar_stream) {
            ColumnarReaderOptions reader_options;
            reader_options.chunk_rows = chunk_rows;
            auto opened = ColumnarReader::Open(data_path, reader_options);
            DQUAG_CHECK(opened.ok());  // validated before the threads began
            file_reader = std::move(*opened);
            reader = file_reader.get();
          } else {
            view_reader =
                std::make_unique<TableViewChunkReader>(&table, chunk_rows);
            reader = view_reader.get();
          }
          auto obs = service.ObserveStream(*reader);
          DQUAG_CHECK(obs.ok());  // readers over validated inputs
          counters.RecordRequest(
              table.num_rows(),
              static_cast<int64_t>(obs->flagged_fraction *
                                   static_cast<double>(table.num_rows()) +
                                   0.5),
              obs->batch_dirty,
              static_cast<uint64_t>(request_timer.ElapsedSeconds() * 1e6));
        } else {
          MonitorObservation obs = service.Observe(table);
          counters.RecordRequest(
              table.num_rows(),
              static_cast<int64_t>(obs.flagged_fraction *
                                   static_cast<double>(table.num_rows()) +
                                   0.5),
              obs.batch_dirty,
              static_cast<uint64_t>(request_timer.ElapsedSeconds() * 1e6));
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();
  const double seconds = timer.ElapsedSeconds();

  const ValidationServiceStats stats = service.stats();
  std::printf("throughput: %.0f rows/s over %.2fs (%lld batches)\n",
              static_cast<double>(stats.rows_validated) / seconds, seconds,
              static_cast<long long>(stats.batches_validated));
  std::printf("flagged: %.2f%% of rows; dirty batches: %lld/%lld; "
              "monitor %s\n",
              stats.rows_validated == 0
                  ? 0.0
                  : 100.0 * static_cast<double>(stats.rows_flagged) /
                        static_cast<double>(stats.rows_validated),
              static_cast<long long>(stats.dirty_batches),
              static_cast<long long>(stats.batches_validated),
              service.alarming() ? "ALARMING" : "quiet");
  std::printf("%s\n",
              FormatStatsLine(counters.Snapshot("sim", true)).c_str());
  return 0;
}

volatile std::sig_atomic_t g_interrupted = 0;
void HandleSigint(int) { g_interrupted = 1; }

/// One --deploy entry: tenant, checkpoint path, serving options.
struct DeploySpecEntry {
  std::string tenant;
  std::string path;
  DeployOptions options;
};

/// Parses "tenant=path[@quantized][,tenant=path...]" from --deploy.
Status ParseDeploySpec(const std::string& spec,
                       std::vector<DeploySpecEntry>* out) {
  size_t start = 0;
  while (start < spec.size()) {
    size_t comma = spec.find(',', start);
    if (comma == std::string::npos) comma = spec.size();
    const std::string entry = spec.substr(start, comma - start);
    const size_t eq = entry.find('=');
    if (eq == std::string::npos || eq == 0 || eq + 1 == entry.size()) {
      return Status::InvalidArgument(
          "--deploy expects tenant=checkpoint, got '" + entry + "'");
    }
    DeploySpecEntry parsed;
    parsed.tenant = entry.substr(0, eq);
    parsed.path = entry.substr(eq + 1);
    // Only a literal trailing "@quantized" is an option marker — an '@'
    // anywhere else stays part of the path.
    constexpr const char kQuantSuffix[] = "@quantized";
    constexpr size_t kQuantSuffixLen = sizeof(kQuantSuffix) - 1;
    if (parsed.path.size() > kQuantSuffixLen &&
        parsed.path.compare(parsed.path.size() - kQuantSuffixLen,
                            kQuantSuffixLen, kQuantSuffix) == 0) {
      parsed.path.resize(parsed.path.size() - kQuantSuffixLen);
      parsed.options.quantized = true;
    }
    out->push_back(std::move(parsed));
    start = comma + 1;
  }
  return Status::Ok();
}

int CmdServe(const Args& args) {
  ServeOptions options;
  options.port = static_cast<int>(args.GetInt("port", 0));
  options.listen_host = args.Get("host", "127.0.0.1");
  options.max_connections = args.GetInt("max-connections", 64);
  options.io_timeout_ms = args.GetInt("io-timeout-ms", 30000);
  options.registry.max_resident = args.GetInt("capacity", 4);
  options.registry.max_inflight_per_tenant = args.GetInt("max-inflight", 32);
  options.registry.service.micro_batch_rows =
      args.GetInt("micro-batch", 512);
  options.auto_retrain = args.Has("auto-retrain");
  options.retrain.finetune_epochs = args.GetInt("retrain-epochs", 5);
  options.retrain.min_buffer_rows = args.GetInt("retrain-min-rows", 256);
  options.retrain.max_buffer_rows = args.GetInt("retrain-buffer-rows", 8192);
  options.retrain.trigger_observations = args.GetInt("retrain-triggers", 3);
  options.retrain.cooldown_rows = args.GetInt("retrain-cooldown-rows", 0);
  options.retrain.seed =
      static_cast<uint64_t>(args.GetInt("retrain-seed", 0));

  std::vector<DeploySpecEntry> deploys;
  if (args.Has("deploy")) {
    Status status = ParseDeploySpec(args.Get("deploy"), &deploys);
    if (!status.ok()) return Fail(status);
  }

  // Crash recovery: a save interrupted before its atomic rename leaves a
  // `*.tmp` beside the checkpoint. Sweep each checkpoint directory once so
  // aborted writes never accumulate (the committed files are untouched).
  {
    std::map<std::string, bool> swept;
    for (const DeploySpecEntry& deploy : deploys) {
      const size_t slash = deploy.path.find_last_of('/');
      const std::string dir =
          slash == std::string::npos ? "." : deploy.path.substr(0, slash);
      if (swept[dir]) continue;
      swept[dir] = true;
      const int64_t removed = RemoveOrphanedTempFiles(dir);
      if (removed > 0) {
        std::printf("recovered %s: removed %lld orphaned temp file(s)\n",
                    dir.c_str(), static_cast<long long>(removed));
      }
    }
  }

  ServeDaemon daemon(options);
  Status status = daemon.Start();
  if (!status.ok()) return Fail(status);
  for (const DeploySpecEntry& deploy : deploys) {
    status = daemon.registry().Deploy(deploy.tenant, deploy.path,
                                      deploy.options);
    if (!status.ok()) {
      daemon.Stop();
      return Fail(status);
    }
    std::printf("deployed %s <- %s (lazy%s)\n", deploy.tenant.c_str(),
                deploy.path.c_str(),
                deploy.options.quantized ? ", quantized" : "");
  }
  std::printf("dquag serve: listening on %s:%d (%zu tenants, capacity %lld,"
              " max-inflight %lld%s)\n",
              options.listen_host.c_str(), daemon.port(), deploys.size(),
              static_cast<long long>(options.registry.max_resident),
              static_cast<long long>(
                  options.registry.max_inflight_per_tenant),
              options.auto_retrain ? ", auto-retrain" : "");
  std::fflush(stdout);

  std::signal(SIGINT, HandleSigint);
  std::signal(SIGTERM, HandleSigint);
  while (!daemon.shutdown_requested() && g_interrupted == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  daemon.Stop();
  for (const TenantStatsSnapshot& snapshot :
       daemon.registry().StatsSnapshot()) {
    std::printf("%s\n", FormatStatsLine(snapshot).c_str());
  }
  return 0;
}

StatusOr<ServeClient> ConnectFromArgs(const Args& args) {
  const int port = static_cast<int>(args.GetInt("port", 0));
  if (port <= 0) {
    return Status::InvalidArgument("--port is required");
  }
  ClientOptions options;
  options.connect_timeout_ms = args.GetInt("connect-timeout-ms", 5000);
  // --timeout-ms is the end-to-end budget; it doubles as the per-operation
  // socket timeout so a stalled daemon resolves within the same budget.
  options.deadline_ms = args.GetInt("timeout-ms", 0);
  options.io_timeout_ms = options.deadline_ms;
  options.retry.max_retries =
      static_cast<int>(args.GetInt("retries", 0));
  return ServeClient::Connect(args.Get("host", "127.0.0.1"), port,
                              std::move(options));
}

int CmdDeploy(const Args& args) {
  const std::string tenant = args.Get("tenant");
  const std::string checkpoint = args.Get("checkpoint");
  if (tenant.empty() || checkpoint.empty()) {
    std::fprintf(stderr,
                 "usage: dquag deploy --port P --tenant T "
                 "--checkpoint model.ckpt [--host H]\n");
    return 1;
  }
  auto client = ConnectFromArgs(args);
  if (!client.ok()) return Fail(client.status());
  const bool quantized = args.Has("quantized");
  Status status = client->Deploy(tenant, checkpoint, quantized);
  if (!status.ok()) return Fail(status);
  std::printf("deployed %s <- %s%s\n", tenant.c_str(), checkpoint.c_str(),
              quantized ? " (quantized)" : "");
  return 0;
}

int CmdStats(const Args& args) {
  auto client = ConnectFromArgs(args);
  if (!client.ok()) return Fail(client.status());
  auto stats = client->Stats(args.Get("tenant"));
  if (!stats.ok()) return Fail(stats.status());
  for (const TenantStatsSnapshot& snapshot : *stats) {
    std::printf("%s\n", FormatStatsLine(snapshot).c_str());
  }
  return 0;
}

int CmdShutdown(const Args& args) {
  auto client = ConnectFromArgs(args);
  if (!client.ok()) return Fail(client.status());
  Status status = client->Shutdown();
  if (!status.ok()) return Fail(status);
  std::printf("shutdown requested\n");
  return 0;
}

int CmdRepair(const Args& args) {
  Table table;
  auto pipeline = LoadModelAndData(args, &table);
  if (!pipeline.ok()) return Fail(pipeline.status());
  const std::string out_path = args.Get("out", "repaired.csv");
  RepairResult repair = pipeline->ValidateAndRepair(table);
  Status status = WriteCsvFile(repair.repaired.ToCsv(), out_path);
  if (!status.ok()) return Fail(status);
  std::printf("repaired %lld cells in %lld instances -> %s\n",
              static_cast<long long>(repair.cells_repaired),
              static_cast<long long>(repair.instances_repaired),
              out_path.c_str());
  return 0;
}

int CmdExplain(const Args& args) {
  Table table;
  auto pipeline = LoadModelAndData(args, &table);
  if (!pipeline.ok()) return Fail(pipeline.status());
  const int64_t row = args.GetInt("row", 0);
  if (row < 0 || row >= table.num_rows()) {
    return Fail(Status::OutOfRange("--row out of range"));
  }
  Explainer explainer(&*pipeline);
  const InstanceExplanation explanation =
      explainer.Explain(table, static_cast<size_t>(row));
  std::printf("row %lld: %s\n", static_cast<long long>(row),
              explanation.ToString().c_str());
  return 0;
}

int CmdSchemaTemplate(const Args& args) {
  const std::string data_path = args.Get("data");
  if (data_path.empty()) {
    std::fprintf(stderr, "usage: dquag schema-template --data data.csv\n");
    return 1;
  }
  auto csv = ReadCsvFile(data_path);
  if (!csv.ok()) return Fail(csv.status());
  // Guess: a column is numeric if every non-empty cell parses as a number.
  std::vector<ColumnSpec> specs;
  for (size_t c = 0; c < csv->header.size(); ++c) {
    bool numeric = true;
    for (const auto& row : csv->rows) {
      const std::string& cell = row[c];
      if (cell.empty()) continue;
      char* end = nullptr;
      std::strtod(cell.c_str(), &end);
      if (end == cell.c_str() || *end != '\0') {
        numeric = false;
        break;
      }
    }
    specs.push_back({csv->header[c],
                     numeric ? ColumnType::kNumeric
                             : ColumnType::kCategorical,
                     ""});
  }
  std::printf("%s\n", SchemaToJson(Schema(std::move(specs))).c_str());
  return 0;
}

int Run(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: dquag <train|convert|validate|repair|explain|serve|"
                 "serve-sim|deploy|stats|shutdown|schema-template> "
                 "[flags]\n");
    return 1;
  }
  SetLogLevel(LogLevel::kWarning);
  const std::string command = argv[1];
  Args args(argc, argv);
  if (command == "train") return CmdTrain(args);
  if (command == "convert") return CmdConvert(args);
  if (command == "validate") return CmdValidate(args);
  if (command == "repair") return CmdRepair(args);
  if (command == "explain") return CmdExplain(args);
  if (command == "serve-sim") return CmdServeSim(args);
  if (command == "serve") return CmdServe(args);
  if (command == "deploy") return CmdDeploy(args);
  if (command == "stats") return CmdStats(args);
  if (command == "shutdown") return CmdShutdown(args);
  if (command == "schema-template") return CmdSchemaTemplate(args);
  std::fprintf(stderr, "unknown command: %s\n", command.c_str());
  return 1;
}

}  // namespace
}  // namespace dquag

int main(int argc, char** argv) { return dquag::Run(argc, argv); }
